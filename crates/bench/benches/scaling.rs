//! Scaling benches: AeroDrome's per-event cost is flat (linear total
//! time), Velodrome's grows with the live transaction graph.
//!
//! This is the measurement backing the paper's headline claim — the
//! published tables only show endpoints (2.4B events in 1.5 s vs a
//! 10-hour timeout); here the trend is measured directly on 2×-spaced
//! trace sizes. Throughput mode makes Criterion report events/second,
//! which should be constant for AeroDrome and degrade for Velodrome on
//! retention workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use aerodrome::optimized::OptimizedChecker;
use aerodrome::run_checker;
use bench::seed_baseline::SeedOptimizedChecker;
use velodrome::VelodromeChecker;
use workloads::{generate, GenConfig};

fn trace_of(events: usize, retention: bool) -> tracelog::Trace {
    generate(&GenConfig {
        seed: 7,
        threads: 8,
        locks: 4,
        vars: 512,
        events,
        retention,
        probe_period: 150,
        violation_at: None, // full-trace processing
        ..GenConfig::default()
    })
}

fn bench_aerodrome_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("aerodrome_scaling");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for events in [20_000usize, 40_000, 80_000, 160_000] {
        let trace = trace_of(events, true);
        g.throughput(Throughput::Elements(trace.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(events), &trace, |b, trace| {
            b.iter(|| {
                let outcome = run_checker(&mut OptimizedChecker::new(), trace);
                assert!(!outcome.is_violation());
            });
        });
    }
    g.finish();
}

fn bench_velodrome_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("velodrome_scaling_retention");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    for events in [5_000usize, 10_000, 20_000, 40_000] {
        let trace = trace_of(events, true);
        g.throughput(Throughput::Elements(trace.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(events), &trace, |b, trace| {
            b.iter(|| {
                let outcome = run_checker(&mut VelodromeChecker::new(), trace);
                assert!(!outcome.is_violation());
            });
        });
    }
    g.finish();
}

fn bench_velodrome_no_retention(c: &mut Criterion) {
    let mut g = c.benchmark_group("velodrome_scaling_gc_effective");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for events in [20_000usize, 40_000, 80_000] {
        let trace = trace_of(events, false);
        g.throughput(Throughput::Elements(trace.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(events), &trace, |b, trace| {
            b.iter(|| {
                let outcome = run_checker(&mut VelodromeChecker::new(), trace);
                assert!(!outcome.is_violation());
            });
        });
    }
    g.finish();
}

/// The extra workload shapes (contended-lock convoy, wide fork/join
/// fan-out, long-transaction nesting): AeroDrome throughput should stay
/// flat on all of them — the convoy stresses the lock clock, the fan-out
/// the thread dimension, the nesting the per-transaction bookkeeping —
/// and the pooled clock core must at least match the cloned baseline on
/// every shape (the `cloned-seed` rows run the frozen pre-refactor
/// clone-per-transfer-edge checker on the same traces).
fn bench_shape_scaling(c: &mut Criterion) {
    for name in workloads::shapes::SHAPE_NAMES {
        let mut g = c.benchmark_group(&format!("aerodrome_{name}"));
        g.sample_size(10).measurement_time(Duration::from_secs(3));
        for events in [20_000usize, 40_000, 80_000] {
            let cfg = GenConfig {
                seed: 7,
                threads: if name == "fanout" { 33 } else { 8 },
                events,
                ..GenConfig::default()
            };
            let trace = workloads::shapes::collect(name, &cfg).expect("known shape");
            g.throughput(Throughput::Elements(trace.len() as u64));
            g.bench_with_input(BenchmarkId::new("pooled", events), &trace, |b, trace| {
                b.iter(|| {
                    let outcome = run_checker(&mut OptimizedChecker::new(), trace);
                    assert!(!outcome.is_violation());
                });
            });
            g.bench_with_input(BenchmarkId::new("cloned-seed", events), &trace, |b, trace| {
                b.iter(|| {
                    let outcome = run_checker(&mut SeedOptimizedChecker::new(), trace);
                    assert!(!outcome.is_violation());
                });
            });
        }
        g.finish();
    }
}

/// End-to-end streaming ingestion: generator → checker without a
/// materialised trace, the pipeline the CLI uses for huge logs.
fn bench_streaming_ingestion(c: &mut Criterion) {
    let mut g = c.benchmark_group("streaming_gen_to_checker");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for events in [40_000usize, 80_000] {
        let cfg = GenConfig { seed: 7, events, violation_at: None, ..GenConfig::default() };
        g.throughput(Throughput::Elements(events as u64));
        g.bench_with_input(BenchmarkId::from_parameter(events), &cfg, |b, cfg| {
            b.iter(|| {
                let mut checker = OptimizedChecker::new();
                let r = bench::run_source_with_budget(
                    &mut checker,
                    &mut workloads::GenSource::new(cfg),
                    Duration::from_secs(3600),
                )
                .unwrap();
                assert!(!r.violation);
            });
        });
    }
    g.finish();
}

/// Single-pass fan-out vs N re-reads: the differential workflow (all
/// three AeroDrome variants + Velodrome over one trace) run the
/// pre-refactor way — one full sequential pass per checker — against
/// one `pipeline::par` pass fanning batches out to worker threads.
/// `rapid compare` is the CLI face of the parallel row.
fn bench_parallel_fanout(c: &mut Criterion) {
    use aerodrome_suite::pipeline::par::{check_all, standard_checkers, ParConfig};
    use aerodrome_suite::pipeline::Pipeline;

    let cfg = GenConfig { seed: 7, threads: 8, events: 80_000, ..GenConfig::default() };
    let trace = generate(&cfg);
    let mut g = c.benchmark_group("differential_panel");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    g.throughput(Throughput::Elements(trace.len() as u64));

    g.bench_with_input(BenchmarkId::new("sequential-rereads", trace.len()), &trace, |b, trace| {
        b.iter(|| {
            for mut checker in standard_checkers() {
                let report = Pipeline::new(trace.stream())
                    .validate(false)
                    .run(checker.as_mut())
                    .expect("in-memory source");
                assert!(!report.outcome.is_violation());
            }
        });
    });
    for jobs in [2usize, 4] {
        let config = ParConfig::default().jobs(jobs).validate(false);
        g.bench_with_input(
            BenchmarkId::new(format!("parallel-j{jobs}"), trace.len()),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let report =
                        check_all(&mut trace.stream(), standard_checkers(), &config).unwrap();
                    assert!(!report.any_violation());
                });
            },
        );
    }
    g.finish();
}

/// Batch-size sweep for the parallel runtime: too small and the channel
/// hand-off dominates, too large and workers idle at the tail. The
/// docs/PERF.md guidance comes from this sweep.
fn bench_parallel_batch_sweep(c: &mut Criterion) {
    use aerodrome_suite::pipeline::par::{check_all, standard_checkers, ParConfig};

    let cfg = GenConfig { seed: 7, threads: 8, events: 80_000, ..GenConfig::default() };
    let trace = generate(&cfg);
    let mut g = c.benchmark_group("parallel_batch_sweep");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    g.throughput(Throughput::Elements(trace.len() as u64));
    for batch in [64usize, 512, 4096, 32_768] {
        let config = ParConfig::default().jobs(4).batch_events(batch).validate(false);
        g.bench_with_input(BenchmarkId::from_parameter(batch), &trace, |b, trace| {
            b.iter(|| {
                let report = check_all(&mut trace.stream(), standard_checkers(), &config).unwrap();
                assert!(!report.any_violation());
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_aerodrome_scaling,
    bench_velodrome_scaling,
    bench_velodrome_no_retention,
    bench_shape_scaling,
    bench_streaming_ingestion,
    bench_parallel_fanout,
    bench_parallel_batch_sweep
);
criterion_main!(benches);
