//! Per-trace sharding bench: one trace, one checker, 1/2/4 cooperating
//! shards.
//!
//! Two questions per workload shape. First, what does splitting one
//! trace's event stream across shards of the *same* checker buy over
//! the sequential engine — this is the paper's missing axis: `compare`
//! parallelises across checkers and chunk-parallel ingest parallelises
//! decode, but the checker itself was the serial floor. Second, how
//! does the win scale with the cross-shard edge rate — convoy (every
//! transaction touches the one global lock → near-total cross traffic)
//! is the adversarial floor, fanout (disjoint ownership after the
//! initial forks) the ceiling, nesting in between. The
//! `CRITERION_SHIM_JSON` dump of this bench is the source of
//! `BENCH_shard.json`, the checked-in last-known-good that the
//! scheduled CI job diffs fresh runs against with `rapid benchdiff`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use aerodrome::readopt::ReadOptChecker;
use aerodrome::shard::Ownership;
use aerodrome::{run_checker, Checker};
use aerodrome_suite::pipeline::shard::{check_sharded, ShardAlgo, ShardConfig};
use tracelog::Trace;
use workloads::{shapes, GenConfig};

const EVENTS: usize = 150_000;

fn bench_shard(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    g.throughput(Throughput::Elements(EVENTS as u64));

    for shape in shapes::SHAPE_NAMES {
        let cfg = GenConfig { events: EVENTS, threads: 8, ..GenConfig::default() };
        let trace: Trace = shapes::collect(shape, &cfg).unwrap();
        let events = trace.len() as u64;

        // The sequential floor: the plain ReadOpt checker, in-memory
        // trace, no pipeline — exactly what sharding must beat.
        g.bench_function(BenchmarkId::new(format!("{shape}/sequential"), 1), |b| {
            b.iter(|| {
                let mut checker = ReadOptChecker::new();
                let outcome = run_checker(&mut checker, &trace);
                assert_eq!(checker.report().events, events, "{outcome:?}");
            });
        });

        for shards in [1usize, 2, 4] {
            g.bench_with_input(
                BenchmarkId::new(format!("{shape}/sharded"), shards),
                &shards,
                |b, &shards| {
                    let own = Ownership::round_robin(shards);
                    let config = ShardConfig::default();
                    b.iter(|| {
                        let report = check_sharded(
                            &mut trace.stream(),
                            ShardAlgo::ReadOpt,
                            own.clone(),
                            &config,
                        )
                        .unwrap();
                        assert_eq!(report.events, events);
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(shard_benches, bench_shard);
criterion_main!(shard_benches);
