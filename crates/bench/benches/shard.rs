//! Per-trace sharding bench: one trace, one checker, 1/2/4 cooperating
//! shards, round-robin vs affinity-derived partitions.
//!
//! Three questions per workload shape. First, what does splitting one
//! trace's event stream across shards of the *same* checker buy over
//! the sequential engine — this is the paper's missing axis: `compare`
//! parallelises across checkers and chunk-parallel ingest parallelises
//! decode, but the checker itself was the serial floor. Second, how
//! does the win scale with the cross-shard edge rate — convoy (every
//! transaction touches the one global lock → near-total cross traffic)
//! is the adversarial floor, fanout (disjoint ownership after the
//! initial forks) the ceiling, nesting in between. Third, how much of
//! that cross traffic does the `pipeline::affinity` auto-partitioner
//! remove — the `partitioned` arms run the same sweep under the
//! locality-minimizing plan, plus a `plan` arm timing the profiling +
//! partitioning pass itself. The `CRITERION_SHIM_JSON` dump of this
//! bench is the source of `BENCH_shard.json`, the checked-in
//! last-known-good that the scheduled CI job diffs fresh runs against
//! with `rapid benchdiff`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use aerodrome::readopt::ReadOptChecker;
use aerodrome::shard::Ownership;
use aerodrome::{run_checker, Checker};
use aerodrome_suite::pipeline::affinity::profile_source;
use aerodrome_suite::pipeline::shard::{check_sharded, ShardAlgo, ShardConfig};
use tracelog::Trace;
use workloads::{shapes, GenConfig};

const EVENTS: usize = 150_000;

fn bench_shard(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    g.throughput(Throughput::Elements(EVENTS as u64));

    for shape in shapes::SHAPE_NAMES {
        let cfg = GenConfig { events: EVENTS, threads: 8, ..GenConfig::default() };
        let trace: Trace = shapes::collect(shape, &cfg).unwrap();
        let events = trace.len() as u64;

        // The sequential floor: the plain ReadOpt checker, in-memory
        // trace, no pipeline — exactly what sharding must beat.
        g.bench_function(BenchmarkId::new(format!("{shape}/sequential"), 1), |b| {
            b.iter(|| {
                let mut checker = ReadOptChecker::new();
                let outcome = run_checker(&mut checker, &trace);
                assert_eq!(checker.report().events, events, "{outcome:?}");
            });
        });

        for shards in [1usize, 2, 4] {
            g.bench_with_input(
                BenchmarkId::new(format!("{shape}/sharded"), shards),
                &shards,
                |b, &shards| {
                    let own = Ownership::round_robin(shards);
                    let config = ShardConfig::default();
                    b.iter(|| {
                        let report = check_sharded(
                            &mut trace.stream(),
                            ShardAlgo::ReadOpt,
                            own.clone(),
                            &config,
                        )
                        .unwrap();
                        assert_eq!(report.events, events);
                    });
                },
            );
        }

        // The one-pass profile + partition itself: must stay cheap
        // relative to a checking run (it is pure counting plus a few
        // KL-style refinement passes over the affinity graph).
        g.bench_function(BenchmarkId::new(format!("{shape}/plan"), 2), |b| {
            b.iter(|| {
                let profile = profile_source(&mut trace.stream(), 4096).unwrap();
                let plan = profile.partition(2);
                assert_eq!(plan.events, events);
            });
        });

        // The same shard sweep under the affinity-derived plan: the
        // spread against `sharded` IS the partitioner's win (convoy
        // collapses onto one shard, fanout re-aligns its private vars).
        let profile = profile_source(&mut trace.stream(), 4096).unwrap();
        for shards in [2usize, 4] {
            let own = profile.partition(shards).ownership();
            g.bench_with_input(
                BenchmarkId::new(format!("{shape}/partitioned"), shards),
                &own,
                |b, own| {
                    let config = ShardConfig::default();
                    b.iter(|| {
                        let report = check_sharded(
                            &mut trace.stream(),
                            ShardAlgo::ReadOpt,
                            own.clone(),
                            &config,
                        )
                        .unwrap();
                        assert_eq!(report.events, events);
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(shard_benches, bench_shard);
criterion_main!(shard_benches);
