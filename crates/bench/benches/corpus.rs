//! Resident-vs-respawn bench: what checker session reuse buys on a
//! multi-trace corpus.
//!
//! Both arms check the same deterministic in-memory corpus with the
//! same sequential loop; the only difference is the checker lifecycle —
//! **resident** constructs one panel and `reset()`s it between traces
//! (warm clock pools, retained table capacity), **respawn** constructs
//! a fresh panel per trace, exactly what scripting `rapid compare` per
//! file does. The gap is the per-trace construction + warm-up cost the
//! `rapid batch` runtime amortises away; docs/PERF.md records the
//! numbers (`--jobs` scaling on top of this is measured by the
//! `--ignored` acceptance test in `tests/multi_pipeline.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use aerodrome::basic::BasicChecker;
use aerodrome::optimized::OptimizedChecker;
use aerodrome::readopt::ReadOptChecker;
use aerodrome::{run_checker, Checker};
use velodrome::VelodromeChecker;
use workloads::corpus::{entries, CorpusConfig};
use workloads::generate;

fn panel() -> Vec<Box<dyn Checker>> {
    vec![
        Box::new(BasicChecker::new()),
        Box::new(ReadOptChecker::new()),
        Box::new(OptimizedChecker::new()),
        Box::new(VelodromeChecker::new()),
    ]
}

/// The corpus, materialised once up front so both arms measure pure
/// checking (no generation, no parsing).
fn corpus(traces: usize, events: usize) -> Vec<tracelog::Trace> {
    entries(&CorpusConfig { traces, events, ..CorpusConfig::default() })
        .iter()
        .map(|e| generate(&e.cfg))
        .collect()
}

fn bench_resident_vs_respawn(c: &mut Criterion) {
    let mut g = c.benchmark_group("corpus_lifecycle");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    for traces in [20usize, 60] {
        let corpus = corpus(traces, 4_000);
        let total: u64 = corpus.iter().map(|t| t.len() as u64).sum();
        g.throughput(Throughput::Elements(total));
        g.bench_with_input(BenchmarkId::new("resident", traces), &corpus, |b, corpus| {
            let mut checkers = panel();
            b.iter(|| {
                for trace in corpus {
                    for checker in &mut checkers {
                        checker.reset();
                        let _ = run_checker(checker.as_mut(), trace);
                    }
                }
            });
        });
        g.bench_with_input(BenchmarkId::new("respawn", traces), &corpus, |b, corpus| {
            b.iter(|| {
                for trace in corpus {
                    for mut checker in panel() {
                        let _ = run_checker(checker.as_mut(), trace);
                    }
                }
            });
        });
    }
    g.finish();
}

criterion_group!(corpus_benches, bench_resident_vs_respawn);
criterion_main!(corpus_benches);
