//! The **seed** (pre-refactor) Algorithm 3 checker, vendored verbatim
//! from commit `463ce9d` for the clock-core ablation benches.
//!
//! This is the clone-per-transfer-edge implementation the pooled core
//! replaced: `.clone()` on full vector clocks at acquire/read/write
//! checks, release, begin, fork/join and the end-event pushes. Keeping
//! it frozen here lets `cargo bench -p bench --bench ablations`
//! (`ablation_clock_core`) measure the refactor's win against the real
//! before-state rather than asserting it. Do not maintain this file:
//! behavioural fixes belong in `aerodrome`, and the differential tests
//! pin the live checkers against each other instead.
#![allow(missing_docs, clippy::all)]

//! Algorithm 3 — the fully optimized AeroDrome (Appendix C.2).
//!
//! On top of Algorithm 2's read-clock reduction this adds the three
//! optimizations the paper's evaluation uses:
//!
//! 1. **Lazy clock updates.** A write does not copy `C_t` into `W_x`;
//!    it sets `staleW_x` and later readers/writers consult the writer's
//!    *current* clock `C_{lastWThr_x}`. Reads push their thread into
//!    `staleR_x` instead of joining `R_x`/`chR_x`; the joins happen in
//!    bulk at the next write (or at the reader's end event). Joining a
//!    thread's current clock can only add components reachable through
//!    that thread's *same open transaction*, i.e. genuine `∗→` paths
//!    (Proposition 1), so detection remains sound — it may even fire
//!    earlier than Algorithm 1.
//! 2. **Update sets.** Instead of scanning all `V` variables at every end
//!    event (lines 43–46 of Algorithm 1), each thread records the
//!    variables whose clocks its end event must refresh.
//! 3. **Garbage collection.** `hasIncomingEdge` (the Velodrome GC
//!    condition, §C.2): if the ending transaction absorbed nothing from
//!    other threads (`C⊲_t[0/t] = C_t[0/t]`) and the forking transaction
//!    is no longer alive, it cannot lie on a cycle and the end-event
//!    pushes are skipped entirely.
//!
//! Ordering checks use O(1) *epoch* comparisons: by the invariant of
//! Appendix C.1, `C_{e1} ⊑ C_{e2} ⟺ C_{e1}(thr(e1)) ≤ C_{e2}(thr(e1))`
//! for event timestamps, and §4.3 extends this to the aggregated
//! `R_x`/`chR_x` clocks.
//!
//! ### Deviation notes (documented fixes to the appendix pseudocode)
//!
//! * **Unary events materialize eagerly.** The pseudocode marks every
//!   write stale and every read lazy. For an event *outside* any
//!   transaction the deferred join would use the thread's clock at some
//!   later time, which may contain components that are not `∗→`-reachable
//!   through the (already completed) unary transaction — a source of
//!   false positives. Unary reads/writes therefore update `R_x`/`chR_x`/
//!   `W_x` immediately, which is exactly Algorithm 1's behaviour.
//! * As in `readopt`, read materialization *joins* rather than
//!   stores.

use tracelog::{Event, EventId, LockId, Op, ThreadId, VarId};
use vc::VectorClock;

use aerodrome::Checker;
use aerodrome::{Violation, ViolationKind};

/// Epoch-based `checkAndGet`: the check `C⊲_t ⊑ clk` reduces to one
/// component comparison (Appendix C.1). Returns `true` on violation.
#[inline]
fn check_epoch(cbegin: &VectorClock, t: usize, active: bool, clk_check: &VectorClock) -> bool {
    active && clk_check.contains_epoch(cbegin.epoch(t))
}

/// The optimized AeroDrome checker (Algorithm 3) — the variant evaluated
/// in Tables 1 and 2.
///
/// # Examples
///
/// ```
/// use aerodrome::{optimized::OptimizedChecker, run_checker, Outcome};
///
/// let trace = tracelog::paper_traces::rho1();
/// assert_eq!(run_checker(&mut OptimizedChecker::new(), &trace), Outcome::Serializable);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SeedOptimizedChecker {
    ct: Vec<VectorClock>,
    cbegin: Vec<VectorClock>,
    lrel: Vec<VectorClock>,
    last_rel_thr: Vec<Option<ThreadId>>,
    wx: Vec<VectorClock>,
    last_w_thr: Vec<Option<ThreadId>>,
    /// `R_x = ⊔_u R_{u,x}` (materialized part).
    rx: Vec<VectorClock>,
    /// `chR_x = ⊔_u R_{u,x}[0/u]` (materialized part).
    chrx: Vec<VectorClock>,
    /// `staleR_x`: threads whose latest read of `x` is not yet joined
    /// into `R_x`/`chR_x`.
    stale_r: Vec<Vec<u32>>,
    /// `staleW_x = ⊤`: `W_x` lags behind the last writer's clock.
    stale_w: Vec<bool>,
    /// `UpdateSetʳ_t` / `UpdateSetʷ_t` with per-(thread, var) membership
    /// bits for O(1) dedup.
    update_r: Vec<Vec<u32>>,
    update_w: Vec<Vec<u32>>,
    in_update_r: Vec<Vec<bool>>,
    in_update_w: Vec<Vec<bool>>,
    /// GC taint per thread: `true` once the thread's transaction chain may
    /// carry an incoming edge. Set when the thread is forked from inside a
    /// transaction (`parentTr_t` may be alive) and whenever one of its
    /// transactions ends *kept* (a cycle can enter a later transaction
    /// through the program-order edge from a kept predecessor — a case the
    /// appendix's bare `C⊲_t[0/t] ≠ C_t[0/t]` test misses; see the
    /// deviation notes and `tests/differential.rs`).
    tainted: Vec<bool>,
    /// Threads that performed at least one event (join-check guard; see
    /// `basic.rs`).
    seen: Vec<bool>,
    txns: TxnTracker,
    events: u64,
    /// Vector-clock joins performed (the dominant O(|Thr|) operation).
    clock_joins: u64,
    stopped: Option<Violation>,
}

impl SeedOptimizedChecker {
    /// Creates a checker with empty state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_thread(&mut self, t: ThreadId) {
        let i = t.index();
        ensure_with(&mut self.ct, i, |u| VectorClock::bottom().with_component(u, 1));
        ensure_with(&mut self.cbegin, i, |_| VectorClock::bottom());
        ensure_with(&mut self.update_r, i, |_| Vec::new());
        ensure_with(&mut self.update_w, i, |_| Vec::new());
        ensure_with(&mut self.in_update_r, i, |_| Vec::new());
        ensure_with(&mut self.in_update_w, i, |_| Vec::new());
        ensure_with(&mut self.tainted, i, |_| false);
        ensure_with(&mut self.seen, i, |_| false);
        self.txns.ensure(i);
    }

    fn ensure_lock(&mut self, l: LockId) {
        let i = l.index();
        ensure_with(&mut self.lrel, i, |_| VectorClock::bottom());
        ensure_with(&mut self.last_rel_thr, i, |_| None);
    }

    fn ensure_var(&mut self, x: VarId) {
        let i = x.index();
        ensure_with(&mut self.wx, i, |_| VectorClock::bottom());
        ensure_with(&mut self.last_w_thr, i, |_| None);
        ensure_with(&mut self.rx, i, |_| VectorClock::bottom());
        ensure_with(&mut self.chrx, i, |_| VectorClock::bottom());
        ensure_with(&mut self.stale_r, i, |_| Vec::new());
        ensure_with(&mut self.stale_w, i, |_| false);
    }

    fn violation(&mut self, event: EventId, thread: ThreadId, kind: ViolationKind) -> Violation {
        let v = Violation { event, thread, kind };
        self.stopped = Some(v.clone());
        v
    }

    /// Joins `clk` into `C_t`. When the event is *unary* (no active
    /// transaction) and the join brings genuinely new knowledge, the unary
    /// transaction has an incoming edge; since unary transactions never
    /// run the end handler, the keptness must be recorded here so later
    /// transactions of `t` are not garbage collected past the
    /// program-order edge (see the `tainted` field docs).
    fn join_ct(&mut self, ti: usize, active: bool, clk: &VectorClock) {
        if !active && !clk.leq(&self.ct[ti]) {
            self.tainted[ti] = true;
        }
        self.clock_joins += 1;
        self.ct[ti].join_from(clk);
    }

    /// Number of vector-clock joins performed through the conflict
    /// handlers so far — AeroDrome's work metric: bounded per event, so
    /// it grows linearly in the trace (asserted in the shape tests),
    /// unlike Velodrome's DFS visit count.
    #[must_use]
    pub fn clock_joins(&self) -> u64 {
        self.clock_joins
    }

    /// Adds `x` to the read/write update set of every thread with an
    /// active transaction whose begin is ordered before `C_t` (lines
    /// 34–36 / 50–52); epoch comparison per thread.
    fn mark_update_sets(&mut self, x: VarId, ti: usize, write: bool) {
        let xi = x.index();
        for u in 0..self.ct.len() {
            let u_id = ThreadId::from_index(u);
            if !self.txns.active(u_id) {
                continue;
            }
            if !self.ct[ti].contains_epoch(self.cbegin[u].epoch(u)) {
                continue;
            }
            let (sets, bits) = if write {
                (&mut self.update_w, &mut self.in_update_w)
            } else {
                (&mut self.update_r, &mut self.in_update_r)
            };
            ensure_with(&mut bits[u], xi, |_| false);
            if !bits[u][xi] {
                bits[u][xi] = true;
                sets[u].push(xi as u32);
            }
        }
    }

    /// Materializes all lazy reads of `x` into `R_x`/`chR_x` (lines
    /// 43–46).
    fn flush_stale_reads(&mut self, xi: usize) {
        let readers = std::mem::take(&mut self.stale_r[xi]);
        for u in readers {
            let cu = &self.ct[u as usize];
            self.rx[xi].join_from(cu);
            self.chrx[xi].join_from_zeroed(cu, u as usize);
        }
    }

    /// `hasIncomingEdge(t)` (lines 11–12), strengthened with the
    /// program-order taint — see the field docs on `tainted`.
    fn has_incoming_edge(&self, ti: usize) -> bool {
        if self.tainted[ti] {
            return true;
        }
        let (cb, ct) = (&self.cbegin[ti], &self.ct[ti]);
        let dim = ct.dim().max(cb.dim());
        (0..dim).any(|v| v != ti && ct.component(v) > cb.component(v))
    }

    fn handle(&mut self, event: Event, eid: EventId) -> Result<(), Violation> {
        let t = event.thread;
        let ti = t.index();
        self.ensure_thread(t);
        self.seen[ti] = true;
        match event.op {
            Op::Acquire(l) => {
                self.ensure_lock(l);
                if self.last_rel_thr[l.index()] != Some(t) {
                    let active = self.txns.active(t);
                    if check_epoch(&self.cbegin[ti], ti, active, &self.lrel[l.index()]) {
                        return Err(self.violation(eid, t, ViolationKind::AtAcquire(l)));
                    }
                    let lrel = self.lrel[l.index()].clone();
                    self.join_ct(ti, active, &lrel);
                }
            }
            Op::Release(l) => {
                self.ensure_lock(l);
                self.lrel[l.index()] = self.ct[ti].clone();
                self.last_rel_thr[l.index()] = Some(t);
            }
            Op::Fork(u) => {
                self.ensure_thread(u);
                let ct_t = self.ct[ti].clone();
                self.ct[u.index()].join_from(&ct_t);
                // The forking transaction is a potential cycle entry for
                // every transaction of the child (`parentTr_u is alive`).
                if self.txns.active(t) {
                    self.tainted[u.index()] = true;
                }
            }
            Op::Join(u) => {
                self.ensure_thread(u);
                let active = self.txns.active(t) && self.seen[u.index()];
                if check_epoch(&self.cbegin[ti], ti, active, &self.ct[u.index()]) {
                    return Err(self.violation(eid, t, ViolationKind::AtJoin(u)));
                }
                let cu = self.ct[u.index()].clone();
                self.join_ct(ti, self.txns.active(t), &cu);
            }
            Op::Read(x) => {
                self.ensure_var(x);
                let xi = x.index();
                let active = self.txns.active(t);
                if self.last_w_thr[xi] != Some(t) {
                    // Lazy write: the authoritative timestamp is the last
                    // writer's current clock (lines 29–32).
                    let check_is_stale = self.stale_w[xi];
                    let writer = self.last_w_thr[xi].map(ThreadId::index);
                    let clk = match (check_is_stale, writer) {
                        (true, Some(w)) => self.ct[w].clone(),
                        _ => self.wx[xi].clone(),
                    };
                    if check_epoch(&self.cbegin[ti], ti, active, &clk) {
                        return Err(self.violation(eid, t, ViolationKind::AtRead(x)));
                    }
                    self.join_ct(ti, active, &clk);
                }
                if active {
                    if !self.stale_r[xi].contains(&(ti as u32)) {
                        self.stale_r[xi].push(ti as u32);
                    }
                } else {
                    // Unary read: materialize now (deviation note).
                    let ct_t = self.ct[ti].clone();
                    self.rx[xi].join_from(&ct_t);
                    self.chrx[xi].join_from_zeroed(&ct_t, ti);
                }
                self.mark_update_sets(x, ti, false);
            }
            Op::Write(x) => {
                self.ensure_var(x);
                let xi = x.index();
                let active = self.txns.active(t);
                if self.last_w_thr[xi] != Some(t) {
                    let check_is_stale = self.stale_w[xi];
                    let writer = self.last_w_thr[xi].map(ThreadId::index);
                    let clk = match (check_is_stale, writer) {
                        (true, Some(w)) => self.ct[w].clone(),
                        _ => self.wx[xi].clone(),
                    };
                    if check_epoch(&self.cbegin[ti], ti, active, &clk) {
                        return Err(self.violation(eid, t, ViolationKind::AtWriteVsWrite(x)));
                    }
                    self.join_ct(ti, active, &clk);
                }
                self.flush_stale_reads(xi);
                if check_epoch(&self.cbegin[ti], ti, active, &self.chrx[xi]) {
                    return Err(self.violation(eid, t, ViolationKind::AtWriteVsRead(x)));
                }
                let rx = self.rx[xi].clone();
                self.join_ct(ti, active, &rx);
                if active {
                    self.stale_w[xi] = true;
                } else {
                    // Unary write: materialize now (deviation note).
                    self.stale_w[xi] = false;
                    self.wx[xi] = self.ct[ti].clone();
                }
                self.last_w_thr[xi] = Some(t);
                self.mark_update_sets(x, ti, true);
            }
            Op::Begin => {
                if self.txns.on_begin(t) {
                    self.ct[ti].increment(ti);
                    self.cbegin[ti] = self.ct[ti].clone();
                }
            }
            Op::End => {
                if self.txns.on_end(t) {
                    if self.has_incoming_edge(ti) {
                        // Kept: later transactions of this thread inherit
                        // a potential incoming (program-order) edge.
                        self.tainted[ti] = true;
                        self.end_with_pushes(eid, t, ti)?;
                    } else {
                        self.end_garbage_collected(t, ti);
                    }
                }
            }
        }
        Ok(())
    }

    /// The non-GC end handler (lines 57–73).
    fn end_with_pushes(&mut self, eid: EventId, t: ThreadId, ti: usize) -> Result<(), Violation> {
        let ct_t = self.ct[ti].clone();
        let cb = self.cbegin[ti].clone();
        let cb_epoch = cb.epoch(ti);
        for u in 0..self.ct.len() {
            if u == ti || !self.ct[u].contains_epoch(cb_epoch) {
                continue;
            }
            let u_id = ThreadId::from_index(u);
            if check_epoch(&self.cbegin[u], u, self.txns.active(u_id), &ct_t) {
                return Err(self.violation(eid, u_id, ViolationKind::AtEnd { ending: t }));
            }
            self.ct[u].join_from(&ct_t);
        }
        for lrel in &mut self.lrel {
            if lrel.contains_epoch(cb_epoch) {
                lrel.join_from(&ct_t);
            }
        }
        let wset = std::mem::take(&mut self.update_w[ti]);
        for xi in wset {
            let xi = xi as usize;
            self.in_update_w[ti][xi] = false;
            if !self.stale_w[xi] || self.last_w_thr[xi] == Some(t) {
                self.wx[xi].join_from(&ct_t);
            }
            if self.last_w_thr[xi] == Some(t) {
                self.stale_w[xi] = false;
            }
        }
        let rset = std::mem::take(&mut self.update_r[ti]);
        for xi in rset {
            let xi = xi as usize;
            self.in_update_r[ti][xi] = false;
            self.rx[xi].join_from(&ct_t);
            self.chrx[xi].join_from_zeroed(&ct_t, ti);
            self.stale_r[xi].retain(|&u| u as usize != ti);
        }
        Ok(())
    }

    /// The GC end handler (lines 75–86): the transaction has no incoming
    /// edge, so its outgoing clock pushes are dropped.
    fn end_garbage_collected(&mut self, t: ThreadId, ti: usize) {
        let rset = std::mem::take(&mut self.update_r[ti]);
        for xi in rset {
            let xi = xi as usize;
            self.in_update_r[ti][xi] = false;
            self.stale_r[xi].retain(|&u| u as usize != ti);
        }
        let wset = std::mem::take(&mut self.update_w[ti]);
        for xi in wset {
            let xi = xi as usize;
            self.in_update_w[ti][xi] = false;
            if self.last_w_thr[xi] == Some(t) {
                self.stale_w[xi] = false;
                self.last_w_thr[xi] = None;
            }
        }
        for lr in &mut self.last_rel_thr {
            if *lr == Some(t) {
                *lr = None;
            }
        }
    }
}

impl Checker for SeedOptimizedChecker {
    fn process(&mut self, event: Event) -> Result<(), Violation> {
        if let Some(v) = &self.stopped {
            return Err(v.clone());
        }
        let eid = EventId(self.events);
        self.events += 1;
        self.handle(event, eid)
    }

    fn events_processed(&self) -> u64 {
        self.events
    }

    fn name(&self) -> &'static str {
        "aerodrome"
    }

    /// The frozen seed checker has no recycled storage to keep warm; its
    /// session reset *is* reconstruction — which is exactly the
    /// per-trace-respawn baseline the resident runtime is measured
    /// against.
    fn reset(&mut self) {
        *self = Self::default();
    }
}

// Internal helpers vendored from the seed util module.

/// Grows `v` so index `n` is valid, filling with `f(index)`.
pub fn ensure_with<T>(v: &mut Vec<T>, n: usize, f: impl Fn(usize) -> T) {
    while v.len() <= n {
        v.push(f(v.len()));
    }
}

/// Tracks transaction nesting per thread (§4.1.4).
///
/// Only the outermost begin/end of nested atomic blocks constitute a
/// transaction; inner boundary events are ignored. Events at depth zero
/// are unary transactions: never *active*, so `checkAndGet` never declares
/// a violation for them.
#[derive(Clone, Debug, Default)]
pub struct TxnTracker {
    depth: Vec<usize>,
    /// Count of outermost begins per thread; identifies "the current
    /// transaction of t" for the GC parent-liveness test.
    seq: Vec<u64>,
}

impl TxnTracker {
    pub fn ensure(&mut self, t: usize) {
        ensure_with(&mut self.depth, t, |_| 0);
        ensure_with(&mut self.seq, t, |_| 0);
    }

    /// Registers a begin event; returns `true` iff it is outermost.
    pub fn on_begin(&mut self, t: ThreadId) -> bool {
        let i = t.index();
        self.ensure(i);
        self.depth[i] += 1;
        if self.depth[i] == 1 {
            self.seq[i] += 1;
            true
        } else {
            false
        }
    }

    /// Registers an end event; returns `true` iff it closes the outermost
    /// block. Unmatched ends (ill-formed traces) return `false`.
    pub fn on_end(&mut self, t: ThreadId) -> bool {
        let i = t.index();
        self.ensure(i);
        if self.depth[i] == 0 {
            return false;
        }
        self.depth[i] -= 1;
        self.depth[i] == 0
    }

    /// Whether thread `t` has an active transaction.
    pub fn active(&self, t: ThreadId) -> bool {
        self.depth.get(t.index()).copied().unwrap_or(0) > 0
    }
}
