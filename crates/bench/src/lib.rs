//! Measurement harness shared by the table benches and the `rapid` CLI.
//!
//! The paper's Tables 1 and 2 report, per benchmark: trace
//! characteristics (events/threads/locks/variables/transactions), whether
//! the trace is atomic, the wall time of Velodrome and AeroDrome on the
//! same logged trace (with a 10-hour timeout) and the speed-up. This
//! module reproduces that protocol on the scaled workload profiles:
//! generate the trace once, run both checkers on the *same* trace with a
//! wall-clock budget, and print rows in the paper's format next to the
//! published numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod regress;
pub mod seed_baseline;

use std::time::{Duration, Instant};

use aerodrome::optimized::OptimizedChecker;
use aerodrome::Checker;
use tracelog::stream::EventSource;
use tracelog::{MetaInfo, SourceError, Trace};
use velodrome::{VelodromeChecker, VelodromeStats};
use workloads::{generate, Profile};

/// Outcome of one budgeted checker run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunResult {
    /// Wall-clock seconds spent (= the budget when timed out).
    pub seconds: f64,
    /// Whether the budget was exhausted before the trace ended.
    pub timed_out: bool,
    /// Whether a violation was reported.
    pub violation: bool,
    /// Events processed before stopping.
    pub events_processed: u64,
}

impl RunResult {
    /// Formats like the paper's time columns (`TO` for timeouts).
    #[must_use]
    pub fn time_cell(&self) -> String {
        if self.timed_out {
            "TO".to_owned()
        } else {
            format!("{:.3}", self.seconds)
        }
    }
}

/// Runs `checker` over a streaming source, aborting once `budget` is
/// exhausted (checked every 4096 events so the overhead is negligible).
/// The one event path of the harness: [`run_with_budget`] delegates here
/// through a [`tracelog::TraceSource`].
///
/// # Errors
///
/// Propagates the first source failure.
pub fn run_source_with_budget<S: EventSource + ?Sized>(
    checker: &mut dyn Checker,
    source: &mut S,
    budget: Duration,
) -> Result<RunResult, SourceError> {
    let start = Instant::now();
    let mut violation = false;
    let mut timed_out = false;
    let mut i = 0usize;
    while let Some(e) = source.next_event()? {
        if checker.process(e).is_err() {
            violation = true;
            break;
        }
        if i.is_multiple_of(4096) && start.elapsed() >= budget {
            timed_out = true;
            break;
        }
        i += 1;
    }
    Ok(RunResult {
        seconds: start.elapsed().as_secs_f64(),
        timed_out,
        violation,
        events_processed: checker.events_processed(),
    })
}

/// Runs `checker` over an in-memory trace with a wall-clock budget.
pub fn run_with_budget(checker: &mut dyn Checker, trace: &Trace, budget: Duration) -> RunResult {
    run_source_with_budget(checker, &mut trace.stream(), budget)
        .expect("in-memory sources cannot fail")
}

/// One completed table row: measured numbers plus the published ones.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Statistics of the generated (scaled) trace.
    pub info: MetaInfo,
    /// Velodrome result on the generated trace.
    pub velodrome: RunResult,
    /// AeroDrome (optimized) result on the same trace.
    pub aerodrome: RunResult,
    /// Velodrome transaction-graph statistics (for the §5.3 discussion).
    pub graph: VelodromeStats,
    /// The profile (includes the published row).
    pub profile: Profile,
}

impl TableRow {
    /// Measured speed-up; `None` when Velodrome timed out.
    #[must_use]
    pub fn speedup(&self) -> Option<f64> {
        (!self.velodrome.timed_out).then(|| self.velodrome.seconds / self.aerodrome.seconds)
    }

    /// The speed-up column, `> x` for timeouts, as in the paper.
    #[must_use]
    pub fn speedup_cell(&self) -> String {
        match self.speedup() {
            Some(s) => format!("{s:.2}"),
            None => format!("> {:.1}", self.velodrome.seconds / self.aerodrome.seconds),
        }
    }
}

/// Generates the profile's trace and measures both checkers on it.
#[must_use]
pub fn run_profile(profile: &Profile, budget: Duration) -> TableRow {
    let trace = generate(&profile.cfg);
    let info = MetaInfo::of(&trace);

    let mut velo = VelodromeChecker::new();
    let velodrome = run_with_budget(&mut velo, &trace, budget);
    let graph = velo.stats();

    let mut aero = OptimizedChecker::new();
    let aerodrome = run_with_budget(&mut aero, &trace, budget);

    TableRow { name: profile.name, info, velodrome, aerodrome, graph, profile: profile.clone() }
}

/// Renders rows in the layout of Tables 1/2 (columns 1–10), followed by
/// the published times for side-by-side comparison.
#[must_use]
pub fn format_table(title: &str, rows: &[TableRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<14} {:>9} {:>4} {:>5} {:>7} {:>9} {:>7} {:>12} {:>12} {:>9}   {:>18}",
        "Program",
        "Events",
        "Thr",
        "Lks",
        "Vars",
        "Txns",
        "Atomic?",
        "Velodrome(s)",
        "AeroDrome(s)",
        "Speed-up",
        "paper: V/A/speedup"
    );
    for r in rows {
        let paper = &r.profile.row;
        let paper_v = paper.velodrome_s.map_or("TO".to_owned(), |v| {
            format!("{v:.6}").trim_end_matches('0').trim_end_matches('.').to_owned()
        });
        let paper_s = paper.speedup().map_or("> n/a".to_owned(), |s| format!("{s:.2}"));
        let _ = writeln!(
            out,
            "{:<14} {:>9} {:>4} {:>5} {:>7} {:>9} {:>7} {:>12} {:>12} {:>9}   {paper_v}/{}/{paper_s}",
            r.name,
            r.info.events,
            r.info.threads,
            r.info.locks,
            r.info.vars,
            r.info.transactions,
            if r.velodrome.violation || r.aerodrome.violation { "✗" } else { "✓" },
            r.velodrome.time_cell(),
            r.aerodrome.time_cell(),
            r.speedup_cell(),
            paper.aerodrome_s,
        );
    }
    out
}

/// Checks the qualitative claims of the paper against measured rows; the
/// returned list is empty when every claim holds.
///
/// Claims (shape, not absolute numbers):
/// 1. Verdict matches the published `Atomic?` column.
/// 2. Both checkers agree on the verdict unless one timed out.
/// 3. On retention workloads (realistic specs, Table 1 big-speedup rows)
///    AeroDrome is faster than Velodrome.
#[must_use]
pub fn check_shape(rows: &[TableRow]) -> Vec<String> {
    let mut problems = Vec::new();
    for r in rows {
        let measured_violation = r.aerodrome.violation;
        if !r.aerodrome.timed_out && measured_violation == r.profile.row.atomic {
            problems.push(format!(
                "{}: measured verdict (violation={measured_violation}) contradicts the published Atomic? column",
                r.name
            ));
        }
        if !r.velodrome.timed_out
            && !r.aerodrome.timed_out
            && r.velodrome.violation != r.aerodrome.violation
        {
            problems.push(format!("{}: checkers disagree on the verdict", r.name));
        }
        // Timing claims only make sense above the noise floor; the paper
        // itself shows hedc (9.8 K events) at a 1.16× wash.
        let above_noise = r.velodrome.timed_out || r.velodrome.seconds >= 0.1;
        if r.profile.cfg.retention && !r.aerodrome.timed_out && above_noise {
            let ok = r.velodrome.timed_out || r.velodrome.seconds > r.aerodrome.seconds;
            if !ok {
                problems.push(format!(
                    "{}: expected AeroDrome to win on a retention workload (V={:.3}s A={:.3}s)",
                    r.name, r.velodrome.seconds, r.aerodrome.seconds
                ));
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::GenConfig;

    fn tiny_profile() -> Profile {
        let mut p = workloads::table1().into_iter().find(|p| p.name == "hedc").unwrap();
        p.cfg = GenConfig { events: 2_000, ..p.cfg };
        p
    }

    #[test]
    fn run_profile_produces_consistent_row() {
        let row = run_profile(&tiny_profile(), Duration::from_secs(5));
        assert!(row.aerodrome.violation, "hedc profile injects a violation");
        assert!(row.velodrome.violation);
        assert!(!row.aerodrome.timed_out);
        assert!(row.speedup().is_some());
        assert!(check_shape(&[row]).is_empty());
    }

    #[test]
    fn budget_zero_times_out_immediately() {
        let trace =
            generate(&GenConfig { events: 100_000, violation_at: None, ..GenConfig::default() });
        let mut c = OptimizedChecker::new();
        let r = run_with_budget(&mut c, &trace, Duration::ZERO);
        assert!(r.timed_out);
        assert!(!r.violation);
        assert!(r.events_processed < 100_000);
        assert_eq!(r.time_cell(), "TO");
    }

    #[test]
    fn source_and_trace_drivers_agree() {
        let cfg = GenConfig { events: 5_000, violation_at: Some(0.5), ..GenConfig::default() };
        let trace = generate(&cfg);
        let budget = Duration::from_secs(30);
        let mut batch_checker = OptimizedChecker::new();
        let batch = run_with_budget(&mut batch_checker, &trace, budget);
        let mut stream_checker = OptimizedChecker::new();
        let streamed = run_source_with_budget(
            &mut stream_checker,
            &mut workloads::GenSource::new(&cfg),
            budget,
        )
        .unwrap();
        assert_eq!(batch.violation, streamed.violation);
        assert_eq!(batch.events_processed, streamed.events_processed);
    }

    #[test]
    fn table_formatting_contains_all_rows() {
        let row = run_profile(&tiny_profile(), Duration::from_secs(5));
        let text = format_table("Table 1", &[row]);
        assert!(text.contains("hedc"));
        assert!(text.contains("Speed-up"));
    }
}
