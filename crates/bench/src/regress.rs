//! Perf-trajectory regression gate over `rapid-bench-v1` reports.
//!
//! The repo's benchmarks (the criterion shim, `rapid loadgen
//! --bench-json`, the ingest bench) all emit the same flat JSON schema:
//!
//! ```json
//! {"schema":"rapid-bench-v1","bench":"serve","entries":[
//!   {"name":"serve-convoy-c16","wall_s":4.27,"events":3200688,
//!    "events_per_sec":748333.4}]}
//! ```
//!
//! `rapid benchdiff <baseline> <fresh>` parses two such reports with the
//! hand-rolled reader below (no serde in the workspace), matches entries
//! by name, and flags any metric that moved past the noise threshold in
//! its *bad* direction: throughput metrics (`*_per_sec`) must not drop,
//! latency/time metrics (`*_s`, `*_ms`, `*_ns`) must not grow. Plain
//! counts (`events`, `connections`, …) are informational. The scheduled
//! CI job runs this against the checked-in last-known-good
//! `BENCH_*.json` files with the documented 20 % threshold.

use std::fmt::Write as _;

/// One benchmark entry: a name plus its numeric metrics in file order.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// The `"name"` field.
    pub name: String,
    /// Every numeric field of the entry, in file order.
    pub metrics: Vec<(String, f64)>,
}

impl Entry {
    /// Looks up a metric by key.
    #[must_use]
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// A parsed `rapid-bench-v1` report.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// The `"bench"` field (which suite produced this report).
    pub bench: String,
    /// The entries, in file order.
    pub entries: Vec<Entry>,
}

impl Report {
    /// Looks up an entry by name.
    #[must_use]
    pub fn entry(&self, name: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.name == name)
    }
}

// ---------------------------------------------------------------------
// A minimal JSON reader — just enough for the flat rapid-bench-v1 shape
// (objects, arrays, strings without exotic escapes, f64 numbers).
// ---------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Self { bytes: text.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_whitespace) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "expected `{}` at byte {}, found {:?}",
                byte as char,
                self.pos,
                other.map(|b| b as char)
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let escaped =
                        self.bytes.get(self.pos + 1).copied().ok_or("unterminated escape")?;
                    out.push(match escaped {
                        b'n' => '\n',
                        b't' => '\t',
                        other => other as char,
                    });
                    self.pos += 2;
                }
                Some(b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    /// Skips one value of any type (for fields we do not care about).
    fn skip_value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'"') => {
                self.string()?;
            }
            Some(b'{') => {
                self.expect(b'{')?;
                if self.peek() != Some(b'}') {
                    loop {
                        self.string()?;
                        self.expect(b':')?;
                        self.skip_value()?;
                        if self.peek() != Some(b',') {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                self.expect(b'}')?;
            }
            Some(b'[') => {
                self.expect(b'[')?;
                if self.peek() != Some(b']') {
                    loop {
                        self.skip_value()?;
                        if self.peek() != Some(b',') {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                self.expect(b']')?;
            }
            Some(b) if b.is_ascii_alphabetic() => {
                // true / false / null
                while self.bytes.get(self.pos).is_some_and(u8::is_ascii_alphabetic) {
                    self.pos += 1;
                }
            }
            _ => {
                self.number()?;
            }
        }
        Ok(())
    }
}

/// Parses a `rapid-bench-v1` JSON report.
///
/// # Errors
///
/// Malformed JSON, a missing/foreign `"schema"` tag, or entries without
/// a `"name"` — all as display strings naming the offending byte.
pub fn parse_report(text: &str) -> Result<Report, String> {
    let mut r = Reader::new(text);
    let mut schema = None;
    let mut bench = String::new();
    let mut entries = Vec::new();
    r.expect(b'{')?;
    if r.peek() != Some(b'}') {
        loop {
            let key = r.string()?;
            r.expect(b':')?;
            match key.as_str() {
                "schema" => schema = Some(r.string()?),
                "bench" => bench = r.string()?,
                "entries" => {
                    r.expect(b'[')?;
                    if r.peek() != Some(b']') {
                        loop {
                            entries.push(parse_entry(&mut r)?);
                            if r.peek() != Some(b',') {
                                break;
                            }
                            r.pos += 1;
                        }
                    }
                    r.expect(b']')?;
                }
                _ => r.skip_value()?,
            }
            if r.peek() != Some(b',') {
                break;
            }
            r.pos += 1;
        }
    }
    r.expect(b'}')?;
    match schema.as_deref() {
        Some("rapid-bench-v1") => Ok(Report { bench, entries }),
        Some(other) => Err(format!("unsupported schema `{other}` (want rapid-bench-v1)")),
        None => Err("missing `schema` field (want rapid-bench-v1)".into()),
    }
}

fn parse_entry(r: &mut Reader<'_>) -> Result<Entry, String> {
    let mut name = None;
    let mut metrics = Vec::new();
    r.expect(b'{')?;
    if r.peek() != Some(b'}') {
        loop {
            let key = r.string()?;
            r.expect(b':')?;
            match r.peek() {
                Some(b'"') if key == "name" => name = Some(r.string()?),
                Some(b) if b == b'-' || b == b'.' || b.is_ascii_digit() => {
                    metrics.push((key, r.number()?));
                }
                _ => r.skip_value()?,
            }
            if r.peek() != Some(b',') {
                break;
            }
            r.pos += 1;
        }
    }
    r.expect(b'}')?;
    Ok(Entry { name: name.ok_or("entry without a `name`")?, metrics })
}

// ---------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------

/// Which way a metric is allowed to move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-style (`*_per_sec`): dropping is a regression.
    HigherIsBetter,
    /// Time/latency-style (`*_s`, `*_ms`, `*_ns`): growing is a
    /// regression.
    LowerIsBetter,
    /// A plain count — compared for information only.
    Informational,
}

/// Classifies a metric key by its unit suffix.
#[must_use]
pub fn direction_of(key: &str) -> Direction {
    if key.ends_with("_per_sec") {
        Direction::HigherIsBetter
    } else if key.ends_with("_s") || key.ends_with("_ms") || key.ends_with("_ns") {
        Direction::LowerIsBetter
    } else {
        Direction::Informational
    }
}

/// One metric compared across the two reports.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDiff {
    /// Entry name.
    pub entry: String,
    /// Metric key.
    pub key: String,
    /// Baseline value.
    pub base: f64,
    /// Fresh value.
    pub fresh: f64,
    /// Signed change in percent ((fresh − base) / base · 100).
    pub delta_pct: f64,
    /// The key's direction class.
    pub direction: Direction,
    /// Whether this metric moved past the threshold the *bad* way.
    pub regression: bool,
}

/// The outcome of diffing two reports.
#[derive(Clone, Debug, PartialEq)]
pub struct Diff {
    /// Every shared metric, in baseline order.
    pub metrics: Vec<MetricDiff>,
    /// Baseline entries absent from the fresh report (a regression: a
    /// bench that stopped reporting cannot hide a slowdown).
    pub missing: Vec<String>,
    /// The threshold the comparison ran with (percent).
    pub threshold: f64,
}

impl Diff {
    /// Whether anything regressed (metric past threshold, or a baseline
    /// entry missing from the fresh report).
    #[must_use]
    pub fn regressed(&self) -> bool {
        !self.missing.is_empty() || self.metrics.iter().any(|m| m.regression)
    }

    /// Renders the comparison as an aligned table plus a verdict line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:<16} {:>14} {:>14} {:>8}  verdict",
            "entry", "metric", "baseline", "fresh", "delta"
        );
        for m in &self.metrics {
            let verdict = match (m.direction, m.regression) {
                (Direction::Informational, _) => "(info)",
                (_, true) => "REGRESSED",
                (_, false) => "ok",
            };
            let _ = writeln!(
                out,
                "{:<28} {:<16} {:>14.3} {:>14.3} {:>+7.1}%  {verdict}",
                m.entry, m.key, m.base, m.fresh, m.delta_pct
            );
        }
        for name in &self.missing {
            let _ = writeln!(out, "{name}: MISSING from the fresh report");
        }
        let regressions = self.metrics.iter().filter(|m| m.regression).count();
        let _ = writeln!(
            out,
            "verdict: {} regression(s), {} missing entr{} (threshold {}%)",
            regressions,
            self.missing.len(),
            if self.missing.len() == 1 { "y" } else { "ies" },
            self.threshold
        );
        out
    }
}

/// Diffs `fresh` against `base` with a noise `threshold` in percent.
/// Entries are matched by name; metrics by key. Fresh-only entries and
/// metrics are ignored (adding a bench is not a regression).
#[must_use]
pub fn compare(base: &Report, fresh: &Report, threshold: f64) -> Diff {
    let mut metrics = Vec::new();
    let mut missing = Vec::new();
    for entry in &base.entries {
        let Some(new) = fresh.entry(&entry.name) else {
            missing.push(entry.name.clone());
            continue;
        };
        for &(ref key, base_value) in &entry.metrics {
            let Some(fresh_value) = new.metric(key) else { continue };
            let direction = direction_of(key);
            let delta_pct = if base_value == 0.0 {
                0.0
            } else {
                (fresh_value - base_value) / base_value * 100.0
            };
            let regression = match direction {
                Direction::HigherIsBetter => delta_pct < -threshold,
                Direction::LowerIsBetter => delta_pct > threshold,
                Direction::Informational => false,
            };
            metrics.push(MetricDiff {
                entry: entry.name.clone(),
                key: key.clone(),
                base: base_value,
                fresh: fresh_value,
                delta_pct,
                direction,
                regression,
            });
        }
    }
    Diff { metrics, missing, threshold }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{"schema":"rapid-bench-v1","bench":"serve","entries":[
      {"name":"serve-convoy-c16","wall_s":4.277,"events":3200688,
       "events_per_sec":748333.465,"p99_ms":1.25}]}"#;

    #[test]
    fn parses_the_shipped_schema() {
        let report = parse_report(BASE).unwrap();
        assert_eq!(report.bench, "serve");
        assert_eq!(report.entries.len(), 1);
        let e = &report.entries[0];
        assert_eq!(e.name, "serve-convoy-c16");
        assert_eq!(e.metric("wall_s"), Some(4.277));
        assert_eq!(e.metric("events"), Some(3_200_688.0));
        assert_eq!(e.metric("events_per_sec"), Some(748_333.465));
    }

    #[test]
    fn rejects_foreign_schemas_and_junk() {
        assert!(parse_report(r#"{"schema":"other-v2","entries":[]}"#)
            .unwrap_err()
            .contains("unsupported schema"));
        assert!(parse_report(r#"{"entries":[]}"#).unwrap_err().contains("missing `schema`"));
        assert!(parse_report("not json").is_err());
        assert!(parse_report(r#"{"schema":"rapid-bench-v1","entries":[{"wall_s":1}]}"#).is_err());
    }

    #[test]
    fn direction_classes_follow_unit_suffixes() {
        assert_eq!(direction_of("events_per_sec"), Direction::HigherIsBetter);
        assert_eq!(direction_of("bytes_per_sec"), Direction::HigherIsBetter);
        assert_eq!(direction_of("wall_s"), Direction::LowerIsBetter);
        assert_eq!(direction_of("p99_ms"), Direction::LowerIsBetter);
        assert_eq!(direction_of("mean_ns"), Direction::LowerIsBetter);
        assert_eq!(direction_of("events"), Direction::Informational);
    }

    fn tweaked(events_per_sec: f64, wall_s: f64) -> String {
        format!(
            r#"{{"schema":"rapid-bench-v1","bench":"serve","entries":[
              {{"name":"serve-convoy-c16","wall_s":{wall_s},"events":3200688,
               "events_per_sec":{events_per_sec},"p99_ms":1.25}}]}}"#
        )
    }

    #[test]
    fn within_threshold_passes_past_threshold_fails() {
        let base = parse_report(BASE).unwrap();
        // 10 % slower throughput at a 20 % threshold: noise, passes.
        let ok = parse_report(&tweaked(673_500.0, 4.7)).unwrap();
        let diff = compare(&base, &ok, 20.0);
        assert!(!diff.regressed(), "{}", diff.render());
        // 30 % slower throughput: regression.
        let slow = parse_report(&tweaked(523_833.0, 4.277)).unwrap();
        let diff = compare(&base, &slow, 20.0);
        assert!(diff.regressed());
        assert!(diff.render().contains("REGRESSED"), "{}", diff.render());
        // 30 % *faster* is fine — only the bad direction trips.
        let fast = parse_report(&tweaked(972_833.0, 3.0)).unwrap();
        assert!(!compare(&base, &fast, 20.0).regressed());
        // Wall time growing 30 % trips the lower-is-better class.
        let slow_wall = parse_report(&tweaked(748_333.465, 5.6)).unwrap();
        assert!(compare(&base, &slow_wall, 20.0).regressed());
        // Counts never trip, however far they move.
        let diff = compare(&base, &base, 0.0);
        assert!(!diff.regressed(), "identical reports: {}", diff.render());
    }

    #[test]
    fn missing_entries_are_regressions() {
        let base = parse_report(BASE).unwrap();
        let empty =
            parse_report(r#"{"schema":"rapid-bench-v1","bench":"serve","entries":[]}"#).unwrap();
        let diff = compare(&base, &empty, 20.0);
        assert!(diff.regressed());
        assert!(diff.render().contains("MISSING"));
        // The other way round (new benches appearing) is fine.
        assert!(!compare(&empty, &base, 20.0).regressed());
    }
}
