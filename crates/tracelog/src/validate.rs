//! Well-formedness validation for traces.
//!
//! Section 2 of the paper assumes traces are *well-formed*: lock acquires
//! and releases are well matched, a lock is held by at most one thread at a
//! time, begin/end events are well matched, fork events occur before the
//! first event of the child thread, and join events occur after the last
//! event of the child thread. [`validate`] checks these assumptions in a
//! single pass and reports the first violation.
//!
//! Trace *prefixes* are themselves traces, so a valid trace may end with
//! transactions still active and locks still held; [`ValiditySummary`]
//! exposes both so callers can require full closure when they need it
//! (e.g. the differential tests, which rely on every transaction having
//! completed).

use std::collections::HashMap;
use std::fmt;

use crate::ids::{LockId, ThreadId};
use crate::trace::{Event, EventId, Op, Trace};

/// A violation of the paper's well-formedness assumptions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WellFormedError {
    /// `rel(ℓ)` of a lock that is not currently held.
    ReleaseOfUnheldLock {
        /// Offending event.
        event: EventId,
        /// The released lock.
        lock: LockId,
    },
    /// `rel(ℓ)` by a thread other than the holder.
    ReleaseByNonOwner {
        /// Offending event.
        event: EventId,
        /// The released lock.
        lock: LockId,
        /// The thread actually holding the lock.
        holder: ThreadId,
    },
    /// `acq(ℓ)` of a lock held by a different thread (re-entrant acquires
    /// by the holder are permitted, as in Java).
    AcquireOfHeldLock {
        /// Offending event.
        event: EventId,
        /// The acquired lock.
        lock: LockId,
        /// The thread holding the lock.
        holder: ThreadId,
    },
    /// `⊳` with no matching `⊲` in the same thread.
    EndWithoutBegin {
        /// Offending event.
        event: EventId,
        /// The thread performing the unmatched end.
        thread: ThreadId,
    },
    /// `fork(u)` after thread `u` already performed an event (or was
    /// already forked).
    ForkAfterChildStarted {
        /// Offending event.
        event: EventId,
        /// The child thread.
        child: ThreadId,
    },
    /// `fork(t)` or `join(t)` performed by thread `t` itself.
    SelfForkOrJoin {
        /// Offending event.
        event: EventId,
    },
    /// An event of thread `u` after some thread performed `join(u)`.
    EventAfterJoin {
        /// Offending event.
        event: EventId,
        /// The thread that was already joined.
        thread: ThreadId,
    },
}

impl WellFormedError {
    /// The offending event — lets a reporting layer map the failure back
    /// to its input position (e.g. a `.std` line) even when the reader
    /// has batched ahead.
    #[must_use]
    pub fn event(&self) -> EventId {
        match self {
            Self::ReleaseOfUnheldLock { event, .. }
            | Self::ReleaseByNonOwner { event, .. }
            | Self::AcquireOfHeldLock { event, .. }
            | Self::EndWithoutBegin { event, .. }
            | Self::ForkAfterChildStarted { event, .. }
            | Self::SelfForkOrJoin { event }
            | Self::EventAfterJoin { event, .. } => *event,
        }
    }
}

impl fmt::Display for WellFormedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ReleaseOfUnheldLock { event, lock } => {
                write!(f, "{event}: release of lock {lock} that is not held")
            }
            Self::ReleaseByNonOwner { event, lock, holder } => {
                write!(f, "{event}: release of lock {lock} held by {holder}")
            }
            Self::AcquireOfHeldLock { event, lock, holder } => {
                write!(f, "{event}: acquire of lock {lock} held by {holder}")
            }
            Self::EndWithoutBegin { event, thread } => {
                write!(f, "{event}: end of transaction without begin in {thread}")
            }
            Self::ForkAfterChildStarted { event, child } => {
                write!(f, "{event}: fork of thread {child} that already started")
            }
            Self::SelfForkOrJoin { event } => {
                write!(f, "{event}: thread forks or joins itself")
            }
            Self::EventAfterJoin { event, thread } => {
                write!(f, "{event}: event of thread {thread} after it was joined")
            }
        }
    }
}

impl std::error::Error for WellFormedError {}

/// The residual state of a well-formed trace: what is still open at the
/// end. A trace is *closed* when both collections are empty.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct ValiditySummary {
    /// Threads with at least one active (unclosed) transaction and the
    /// current nesting depth of each.
    pub open_transactions: HashMap<ThreadId, usize>,
    /// Locks still held at the end of the trace and their holders.
    pub held_locks: HashMap<LockId, ThreadId>,
}

impl ValiditySummary {
    /// Whether every transaction completed and every lock was released.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.open_transactions.is_empty() && self.held_locks.is_empty()
    }
}

/// The well-formedness checker as an online stage: feed events one at a
/// time with [`Validator::observe`]; the first ill-formed event is
/// reported with its zero-based position, exactly as [`validate`] would.
///
/// Per-thread state grows on demand, so the validator works on streams
/// whose thread count is unknown up front (e.g. an incremental `.std`
/// parse). After an error the validator's state is unspecified; callers
/// are expected to stop.
///
/// # Examples
///
/// ```
/// use tracelog::{TraceBuilder, Validator};
///
/// let mut tb = TraceBuilder::new();
/// let t = tb.thread("t1");
/// let l = tb.lock("m");
/// tb.acquire(t, l).release(t, l);
///
/// let mut v = Validator::new();
/// for &e in &tb.finish() {
///     v.observe(e)?;
/// }
/// assert!(v.finish().is_closed());
/// # Ok::<(), tracelog::WellFormedError>(())
/// ```
#[derive(Clone, Default, Debug)]
pub struct Validator {
    /// (holder, re-entrancy depth) per lock.
    lock_state: HashMap<LockId, (ThreadId, usize)>,
    txn_depth: HashMap<ThreadId, usize>,
    started: Vec<bool>,
    forked: Vec<bool>,
    joined: Vec<bool>,
    events: u64,
}

impl Validator {
    /// Creates a validator with no events observed.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn grow(&mut self, i: usize) {
        if self.started.len() <= i {
            self.started.resize(i + 1, false);
            self.forked.resize(i + 1, false);
            self.joined.resize(i + 1, false);
        }
    }

    /// Number of events observed so far (an erroring event included).
    #[must_use]
    pub fn events_observed(&self) -> u64 {
        self.events
    }

    /// Session reset: forgets all lock/transaction/thread state and the
    /// event counter, keeping table capacity, so one validator serves an
    /// unbounded stream of traces.
    pub fn reset(&mut self) {
        self.lock_state.clear();
        self.txn_depth.clear();
        self.started.clear();
        self.forked.clear();
        self.joined.clear();
        self.events = 0;
    }

    /// Checks the next event against the Section 2 assumptions.
    ///
    /// # Errors
    ///
    /// Returns the [`WellFormedError`] if this event is the first
    /// violation; its `event` field is the zero-based stream position.
    pub fn observe(&mut self, e: Event) -> Result<(), WellFormedError> {
        let event = EventId(self.events);
        self.events += 1;
        let t = e.thread;
        self.grow(t.index());
        if self.joined[t.index()] {
            return Err(WellFormedError::EventAfterJoin { event, thread: t });
        }
        self.started[t.index()] = true;
        match e.op {
            Op::Acquire(l) => match self.lock_state.get_mut(&l) {
                Some((holder, depth)) if *holder == t => *depth += 1,
                Some((holder, _)) => {
                    return Err(WellFormedError::AcquireOfHeldLock {
                        event,
                        lock: l,
                        holder: *holder,
                    })
                }
                None => {
                    self.lock_state.insert(l, (t, 1));
                }
            },
            Op::Release(l) => match self.lock_state.get_mut(&l) {
                Some((holder, depth)) if *holder == t => {
                    *depth -= 1;
                    if *depth == 0 {
                        self.lock_state.remove(&l);
                    }
                }
                Some((holder, _)) => {
                    return Err(WellFormedError::ReleaseByNonOwner {
                        event,
                        lock: l,
                        holder: *holder,
                    })
                }
                None => return Err(WellFormedError::ReleaseOfUnheldLock { event, lock: l }),
            },
            Op::Begin => *self.txn_depth.entry(t).or_insert(0) += 1,
            Op::End => {
                let depth = self.txn_depth.entry(t).or_insert(0);
                if *depth == 0 {
                    return Err(WellFormedError::EndWithoutBegin { event, thread: t });
                }
                *depth -= 1;
                if *depth == 0 {
                    self.txn_depth.remove(&t);
                }
            }
            Op::Fork(u) => {
                if u == t {
                    return Err(WellFormedError::SelfForkOrJoin { event });
                }
                self.grow(u.index());
                if self.started[u.index()] || self.forked[u.index()] {
                    return Err(WellFormedError::ForkAfterChildStarted { event, child: u });
                }
                self.forked[u.index()] = true;
            }
            Op::Join(u) => {
                if u == t {
                    return Err(WellFormedError::SelfForkOrJoin { event });
                }
                self.grow(u.index());
                self.joined[u.index()] = true;
            }
            Op::Read(_) | Op::Write(_) => {}
        }
        Ok(())
    }

    /// The residual open state so far, without consuming the validator.
    #[must_use]
    pub fn summary(&self) -> ValiditySummary {
        ValiditySummary {
            open_transactions: self.txn_depth.clone(),
            held_locks: self.lock_state.iter().map(|(&l, &(holder, _))| (l, holder)).collect(),
        }
    }

    /// Finalises into the residual open state.
    #[must_use]
    pub fn finish(self) -> ValiditySummary {
        ValiditySummary {
            open_transactions: self.txn_depth,
            held_locks: self.lock_state.into_iter().map(|(l, (holder, _))| (l, holder)).collect(),
        }
    }
}

/// Checks the well-formedness assumptions of Section 2 in one pass —
/// [`Validator`] run over a complete in-memory trace.
///
/// # Errors
///
/// Returns the first [`WellFormedError`] encountered in trace order.
///
/// # Examples
///
/// ```
/// use tracelog::{validate, TraceBuilder};
///
/// let mut tb = TraceBuilder::new();
/// let t = tb.thread("t1");
/// let l = tb.lock("m");
/// tb.acquire(t, l).release(t, l);
/// let summary = validate(&tb.finish())?;
/// assert!(summary.is_closed());
/// # Ok::<(), tracelog::WellFormedError>(())
/// ```
pub fn validate(trace: &Trace) -> Result<ValiditySummary, WellFormedError> {
    let mut v = Validator::new();
    for &e in trace {
        v.observe(e)?;
    }
    Ok(v.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    #[test]
    fn accepts_closed_trace() {
        let mut tb = TraceBuilder::new();
        let t = tb.thread("t1");
        let l = tb.lock("m");
        let x = tb.var("x");
        tb.begin(t).acquire(t, l).write(t, x).release(t, l).end(t);
        let s = validate(&tb.finish()).unwrap();
        assert!(s.is_closed());
    }

    #[test]
    fn reports_open_state_for_prefix() {
        let mut tb = TraceBuilder::new();
        let t = tb.thread("t1");
        let l = tb.lock("m");
        tb.begin(t).begin(t).acquire(t, l);
        let s = validate(&tb.finish()).unwrap();
        assert!(!s.is_closed());
        assert_eq!(s.open_transactions[&t], 2);
        assert_eq!(s.held_locks[&l], t);
    }

    #[test]
    fn rejects_release_of_unheld_lock() {
        let mut tb = TraceBuilder::new();
        let t = tb.thread("t1");
        let l = tb.lock("m");
        tb.release(t, l);
        assert_eq!(
            validate(&tb.finish()),
            Err(WellFormedError::ReleaseOfUnheldLock { event: EventId(0), lock: l })
        );
    }

    #[test]
    fn rejects_release_by_non_owner() {
        let mut tb = TraceBuilder::new();
        let (t1, t2) = (tb.thread("t1"), tb.thread("t2"));
        let l = tb.lock("m");
        tb.acquire(t1, l).release(t2, l);
        assert!(matches!(
            validate(&tb.finish()),
            Err(WellFormedError::ReleaseByNonOwner { holder, .. }) if holder == t1
        ));
    }

    #[test]
    fn rejects_cross_thread_acquire_of_held_lock() {
        let mut tb = TraceBuilder::new();
        let (t1, t2) = (tb.thread("t1"), tb.thread("t2"));
        let l = tb.lock("m");
        tb.acquire(t1, l).acquire(t2, l);
        assert!(matches!(
            validate(&tb.finish()),
            Err(WellFormedError::AcquireOfHeldLock { holder, .. }) if holder == t1
        ));
    }

    #[test]
    fn allows_reentrant_acquire() {
        let mut tb = TraceBuilder::new();
        let t = tb.thread("t1");
        let l = tb.lock("m");
        tb.acquire(t, l).acquire(t, l).release(t, l).release(t, l);
        assert!(validate(&tb.finish()).unwrap().is_closed());
    }

    #[test]
    fn rejects_unmatched_end() {
        let mut tb = TraceBuilder::new();
        let t = tb.thread("t1");
        tb.begin(t).end(t).end(t);
        assert!(matches!(
            validate(&tb.finish()),
            Err(WellFormedError::EndWithoutBegin { event, .. }) if event == EventId(2)
        ));
    }

    #[test]
    fn rejects_fork_after_child_started() {
        let mut tb = TraceBuilder::new();
        let (t1, t2) = (tb.thread("t1"), tb.thread("t2"));
        let x = tb.var("x");
        tb.write(t2, x).fork(t1, t2);
        assert!(matches!(
            validate(&tb.finish()),
            Err(WellFormedError::ForkAfterChildStarted { child, .. }) if child == t2
        ));
    }

    #[test]
    fn rejects_double_fork() {
        let mut tb = TraceBuilder::new();
        let (t1, t2, t3) = (tb.thread("t1"), tb.thread("t2"), tb.thread("t3"));
        tb.fork(t1, t3).fork(t2, t3);
        assert!(matches!(
            validate(&tb.finish()),
            Err(WellFormedError::ForkAfterChildStarted { .. })
        ));
    }

    #[test]
    fn rejects_event_after_join() {
        let mut tb = TraceBuilder::new();
        let (t1, t2) = (tb.thread("t1"), tb.thread("t2"));
        let x = tb.var("x");
        tb.write(t2, x).join(t1, t2).write(t2, x);
        assert!(matches!(
            validate(&tb.finish()),
            Err(WellFormedError::EventAfterJoin { thread, .. }) if thread == t2
        ));
    }

    #[test]
    fn rejects_self_fork_and_self_join() {
        let mut tb = TraceBuilder::new();
        let t = tb.thread("t1");
        tb.fork(t, t);
        assert!(matches!(validate(&tb.finish()), Err(WellFormedError::SelfForkOrJoin { .. })));

        let mut tb = TraceBuilder::new();
        let t = tb.thread("t1");
        tb.join(t, t);
        assert!(matches!(validate(&tb.finish()), Err(WellFormedError::SelfForkOrJoin { .. })));
    }

    #[test]
    fn error_display_is_informative() {
        let err =
            WellFormedError::ReleaseOfUnheldLock { event: EventId(4), lock: LockId::from_index(1) };
        assert_eq!(err.to_string(), "e5: release of lock l1 that is not held");
    }
}
