//! Text format for trace logs (the RAPID `.std` standard format).
//!
//! The Rapid artifact analyses traces logged by RoadRunner in a line-based
//! format; we implement the same shape:
//!
//! ```text
//! <thread>|<op>|<loc>
//! ```
//!
//! where `<op>` is one of `r(x)`, `w(x)`, `acq(l)`, `rel(l)`, `fork(t)`,
//! `join(t)`, `begin`, `end` (operand names are arbitrary identifiers) and
//! `<loc>` is an optional program-location token that the analyses ignore.
//! Blank lines and lines starting with `#` are skipped.
//!
//! # Examples
//!
//! ```
//! let src = "t1|begin|0\nt1|w(x)|1\nt2|r(x)|2\nt1|end|3\n";
//! let trace = tracelog::parse_trace(src)?;
//! assert_eq!(trace.len(), 4);
//! assert_eq!(tracelog::write_trace(&trace), src);
//! # Ok::<(), tracelog::ParseTraceError>(())
//! ```

use std::fmt;

use crate::ids::{Interner, LockId, ThreadId, VarId};
use crate::stream::{copy_events, EventSource as _, SourceError, StdReader};
use crate::trace::{Event, Op, Trace};

/// An error while parsing the `.std` trace format.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseTraceError {
    /// One-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The category of a [`ParseTraceError`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseErrorKind {
    /// The line does not have the `<thread>|<op>[|<loc>]` shape.
    MalformedLine,
    /// The thread field is empty.
    EmptyThread,
    /// The operation field is not one of the known operations.
    UnknownOp(String),
    /// The operation is missing its `(operand)` or it is empty.
    MissingOperand(String),
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::MalformedLine => {
                write!(f, "line {}: expected `<thread>|<op>[|<loc>]`", self.line)
            }
            ParseErrorKind::EmptyThread => write!(f, "line {}: empty thread name", self.line),
            ParseErrorKind::UnknownOp(op) => {
                write!(f, "line {}: unknown operation `{op}`", self.line)
            }
            ParseErrorKind::MissingOperand(op) => {
                write!(f, "line {}: operation `{op}` is missing its operand", self.line)
            }
        }
    }
}

impl std::error::Error for ParseTraceError {}

fn operand<'a>(body: &'a str, head: &str, line: usize) -> Result<&'a str, ParseTraceError> {
    let inner = body
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .map(str::trim)
        .filter(|s| !s.is_empty());
    inner.ok_or_else(|| ParseTraceError {
        line,
        kind: ParseErrorKind::MissingOperand(head.to_owned()),
    })
}

/// Parses one pre-trimmed, non-blank, non-comment event line, interning
/// names into the given tables. Shared by the streaming
/// [`StdReader`](crate::stream::StdReader) and [`parse_trace`] — the one
/// place the `.std` grammar is implemented.
pub(crate) fn parse_event_line(
    line: &str,
    line_no: usize,
    threads: &mut Interner,
    locks: &mut Interner,
    vars: &mut Interner,
) -> Result<Event, ParseTraceError> {
    let mut fields = line.splitn(3, '|');
    let thread = fields.next().unwrap_or("").trim();
    let op = fields
        .next()
        .ok_or(ParseTraceError { line: line_no, kind: ParseErrorKind::MalformedLine })?
        .trim();
    if thread.is_empty() {
        return Err(ParseTraceError { line: line_no, kind: ParseErrorKind::EmptyThread });
    }
    let t = ThreadId::from_index(threads.intern(thread));
    let (head, body) = match op.find('(') {
        Some(p) => op.split_at(p),
        None => (op, ""),
    };
    let op = match head {
        "r" => Op::Read(VarId::from_index(vars.intern(operand(body, head, line_no)?))),
        "w" => Op::Write(VarId::from_index(vars.intern(operand(body, head, line_no)?))),
        "acq" => Op::Acquire(LockId::from_index(locks.intern(operand(body, head, line_no)?))),
        "rel" => Op::Release(LockId::from_index(locks.intern(operand(body, head, line_no)?))),
        "fork" => Op::Fork(ThreadId::from_index(threads.intern(operand(body, head, line_no)?))),
        "join" => Op::Join(ThreadId::from_index(threads.intern(operand(body, head, line_no)?))),
        "begin" if body.is_empty() => Op::Begin,
        "end" if body.is_empty() => Op::End,
        other => {
            return Err(ParseTraceError {
                line: line_no,
                kind: ParseErrorKind::UnknownOp(other.to_owned()),
            })
        }
    };
    Ok(Event::new(t, op))
}

/// Parses a trace in the `.std` text format.
///
/// Implemented as a collect over the streaming
/// [`StdReader`], so the incremental and batch
/// paths cannot diverge.
///
/// # Errors
///
/// Returns a [`ParseTraceError`] identifying the first malformed line.
pub fn parse_trace(src: &str) -> Result<Trace, ParseTraceError> {
    let mut reader = StdReader::new(src.as_bytes());
    let mut events = Vec::new();
    loop {
        match reader.next_event() {
            Ok(Some(event)) => events.push(event),
            Ok(None) => break,
            Err(SourceError::Parse(e)) => return Err(e),
            Err(SourceError::Io(_) | SourceError::Malformed(_) | SourceError::Binary(_)) => {
                unreachable!("in-memory reads cannot fail and StdReader does not validate")
            }
        }
    }
    let (threads, locks, vars) = reader.into_names();
    Ok(Trace::from_parts(events, threads, locks, vars))
}

/// Serialises a trace to the `.std` text format, one event per line, with
/// the event's trace offset as the `<loc>` field.
///
/// A thin wrapper over the streaming
/// [`copy_events`]. Round-trips with
/// [`parse_trace`]: parsing the output reproduces an event-identical
/// trace (name tables may be re-ordered only if the trace was built with
/// interning order different from first-occurrence order, which
/// [`crate::TraceBuilder`] never does for events it has seen).
#[must_use]
pub fn write_trace(trace: &Trace) -> String {
    let mut out = Vec::with_capacity(trace.len() * 16);
    copy_events(&mut trace.stream(), &mut out).expect("in-memory serialisation cannot fail");
    String::from_utf8(out).expect("the .std format is ASCII-clean over valid UTF-8 names")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    #[test]
    fn parses_all_operations() {
        let src = "\
main|fork(w)|0
main|begin|1
main|acq(mu)|2
main|w(x)|3
main|r(x)|4
main|rel(mu)|5
main|end|6
w|begin|7
w|end|8
main|join(w)|9
";
        let tr = parse_trace(src).unwrap();
        assert_eq!(tr.len(), 10);
        assert_eq!(tr.num_threads(), 2);
        assert_eq!(tr.num_locks(), 1);
        assert_eq!(tr.num_vars(), 1);
        assert!(matches!(tr[0].op, Op::Fork(_)));
        assert!(matches!(tr[9].op, Op::Join(_)));
    }

    #[test]
    fn skips_blank_lines_and_comments() {
        let src = "# a comment\n\n t1 | begin | 0 \n\nt1|end\n";
        let tr = parse_trace(src).unwrap();
        assert_eq!(tr.len(), 2);
    }

    #[test]
    fn loc_field_is_optional() {
        let tr = parse_trace("t1|w(x)").unwrap();
        assert_eq!(tr.len(), 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(parse_trace("justonefield").unwrap_err().kind, ParseErrorKind::MalformedLine);
        assert_eq!(parse_trace("|begin|0").unwrap_err().kind, ParseErrorKind::EmptyThread);
        assert!(matches!(
            parse_trace("t1|frobnicate(x)|0").unwrap_err().kind,
            ParseErrorKind::UnknownOp(_)
        ));
        assert!(matches!(
            parse_trace("t1|r()|0").unwrap_err().kind,
            ParseErrorKind::MissingOperand(_)
        ));
        assert!(matches!(
            parse_trace("t1|r|0").unwrap_err().kind,
            ParseErrorKind::MissingOperand(_)
        ));
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse_trace("t1|begin|0\nt1|bogus|1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn roundtrip_preserves_events() {
        let mut tb = TraceBuilder::new();
        let (t1, t2) = (tb.thread("t1"), tb.thread("t2"));
        let l = tb.lock("m");
        let x = tb.var("x");
        tb.fork(t1, t2)
            .begin(t1)
            .acquire(t1, l)
            .write(t1, x)
            .release(t1, l)
            .end(t1)
            .begin(t2)
            .read(t2, x)
            .end(t2)
            .join(t1, t2);
        let tr = tb.finish();
        let text = write_trace(&tr);
        let back = parse_trace(&text).unwrap();
        assert_eq!(back.events(), tr.events());
        assert_eq!(back.num_threads(), tr.num_threads());
    }
}
