//! Text format for trace logs (the RAPID `.std` standard format).
//!
//! The Rapid artifact analyses traces logged by RoadRunner in a line-based
//! format; we implement the same shape:
//!
//! ```text
//! <thread>|<op>|<loc>
//! ```
//!
//! where `<op>` is one of `r(x)`, `w(x)`, `acq(l)`, `rel(l)`, `fork(t)`,
//! `join(t)`, `begin`, `end` (operand names are arbitrary identifiers) and
//! `<loc>` is an optional program-location token that the analyses ignore.
//! Blank lines and lines starting with `#` are skipped.
//!
//! # Examples
//!
//! ```
//! let src = "t1|begin|0\nt1|w(x)|1\nt2|r(x)|2\nt1|end|3\n";
//! let trace = tracelog::parse_trace(src)?;
//! assert_eq!(trace.len(), 4);
//! assert_eq!(tracelog::write_trace(&trace), src);
//! # Ok::<(), tracelog::ParseTraceError>(())
//! ```

use std::fmt;
use std::fmt::Write as _;

use crate::trace::{Op, Trace, TraceBuilder};

/// An error while parsing the `.std` trace format.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseTraceError {
    /// One-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The category of a [`ParseTraceError`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseErrorKind {
    /// The line does not have the `<thread>|<op>[|<loc>]` shape.
    MalformedLine,
    /// The thread field is empty.
    EmptyThread,
    /// The operation field is not one of the known operations.
    UnknownOp(String),
    /// The operation is missing its `(operand)` or it is empty.
    MissingOperand(String),
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::MalformedLine => {
                write!(f, "line {}: expected `<thread>|<op>[|<loc>]`", self.line)
            }
            ParseErrorKind::EmptyThread => write!(f, "line {}: empty thread name", self.line),
            ParseErrorKind::UnknownOp(op) => {
                write!(f, "line {}: unknown operation `{op}`", self.line)
            }
            ParseErrorKind::MissingOperand(op) => {
                write!(f, "line {}: operation `{op}` is missing its operand", self.line)
            }
        }
    }
}

impl std::error::Error for ParseTraceError {}

fn operand<'a>(body: &'a str, head: &str, line: usize) -> Result<&'a str, ParseTraceError> {
    let inner = body
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .map(str::trim)
        .filter(|s| !s.is_empty());
    inner.ok_or_else(|| ParseTraceError {
        line,
        kind: ParseErrorKind::MissingOperand(head.to_owned()),
    })
}

/// Parses a trace in the `.std` text format.
///
/// # Errors
///
/// Returns a [`ParseTraceError`] identifying the first malformed line.
pub fn parse_trace(src: &str) -> Result<Trace, ParseTraceError> {
    let mut tb = TraceBuilder::new();
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.splitn(3, '|');
        let thread = fields.next().unwrap_or("").trim();
        let op = fields
            .next()
            .ok_or(ParseTraceError { line: line_no, kind: ParseErrorKind::MalformedLine })?
            .trim();
        if thread.is_empty() {
            return Err(ParseTraceError { line: line_no, kind: ParseErrorKind::EmptyThread });
        }
        let t = tb.thread(thread);
        let (head, body) = match op.find('(') {
            Some(p) => op.split_at(p),
            None => (op, ""),
        };
        match head {
            "r" => {
                let x = tb.var(operand(body, head, line_no)?);
                tb.read(t, x);
            }
            "w" => {
                let x = tb.var(operand(body, head, line_no)?);
                tb.write(t, x);
            }
            "acq" => {
                let l = tb.lock(operand(body, head, line_no)?);
                tb.acquire(t, l);
            }
            "rel" => {
                let l = tb.lock(operand(body, head, line_no)?);
                tb.release(t, l);
            }
            "fork" => {
                let u = tb.thread(operand(body, head, line_no)?);
                tb.fork(t, u);
            }
            "join" => {
                let u = tb.thread(operand(body, head, line_no)?);
                tb.join(t, u);
            }
            "begin" if body.is_empty() => {
                tb.begin(t);
            }
            "end" if body.is_empty() => {
                tb.end(t);
            }
            other => {
                return Err(ParseTraceError {
                    line: line_no,
                    kind: ParseErrorKind::UnknownOp(other.to_owned()),
                })
            }
        }
    }
    Ok(tb.finish())
}

/// Serialises a trace to the `.std` text format, one event per line, with
/// the event's trace offset as the `<loc>` field.
///
/// Round-trips with [`parse_trace`]: parsing the output reproduces an
/// event-identical trace (name tables may be re-ordered only if the trace
/// was built with interning order different from first-occurrence order,
/// which [`TraceBuilder`] never does for events it has seen).
#[must_use]
pub fn write_trace(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.len() * 16);
    for (i, e) in trace.iter().enumerate() {
        let t = trace.thread_name(e.thread);
        match e.op {
            Op::Read(x) => {
                let _ = writeln!(out, "{t}|r({})|{i}", trace.var_name(x));
            }
            Op::Write(x) => {
                let _ = writeln!(out, "{t}|w({})|{i}", trace.var_name(x));
            }
            Op::Acquire(l) => {
                let _ = writeln!(out, "{t}|acq({})|{i}", trace.lock_name(l));
            }
            Op::Release(l) => {
                let _ = writeln!(out, "{t}|rel({})|{i}", trace.lock_name(l));
            }
            Op::Fork(u) => {
                let _ = writeln!(out, "{t}|fork({})|{i}", trace.thread_name(u));
            }
            Op::Join(u) => {
                let _ = writeln!(out, "{t}|join({})|{i}", trace.thread_name(u));
            }
            Op::Begin => {
                let _ = writeln!(out, "{t}|begin|{i}");
            }
            Op::End => {
                let _ = writeln!(out, "{t}|end|{i}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    #[test]
    fn parses_all_operations() {
        let src = "\
main|fork(w)|0
main|begin|1
main|acq(mu)|2
main|w(x)|3
main|r(x)|4
main|rel(mu)|5
main|end|6
w|begin|7
w|end|8
main|join(w)|9
";
        let tr = parse_trace(src).unwrap();
        assert_eq!(tr.len(), 10);
        assert_eq!(tr.num_threads(), 2);
        assert_eq!(tr.num_locks(), 1);
        assert_eq!(tr.num_vars(), 1);
        assert!(matches!(tr[0].op, Op::Fork(_)));
        assert!(matches!(tr[9].op, Op::Join(_)));
    }

    #[test]
    fn skips_blank_lines_and_comments() {
        let src = "# a comment\n\n t1 | begin | 0 \n\nt1|end\n";
        let tr = parse_trace(src).unwrap();
        assert_eq!(tr.len(), 2);
    }

    #[test]
    fn loc_field_is_optional() {
        let tr = parse_trace("t1|w(x)").unwrap();
        assert_eq!(tr.len(), 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(parse_trace("justonefield").unwrap_err().kind, ParseErrorKind::MalformedLine);
        assert_eq!(parse_trace("|begin|0").unwrap_err().kind, ParseErrorKind::EmptyThread);
        assert!(matches!(
            parse_trace("t1|frobnicate(x)|0").unwrap_err().kind,
            ParseErrorKind::UnknownOp(_)
        ));
        assert!(matches!(
            parse_trace("t1|r()|0").unwrap_err().kind,
            ParseErrorKind::MissingOperand(_)
        ));
        assert!(matches!(
            parse_trace("t1|r|0").unwrap_err().kind,
            ParseErrorKind::MissingOperand(_)
        ));
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse_trace("t1|begin|0\nt1|bogus|1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn roundtrip_preserves_events() {
        let mut tb = TraceBuilder::new();
        let (t1, t2) = (tb.thread("t1"), tb.thread("t2"));
        let l = tb.lock("m");
        let x = tb.var("x");
        tb.fork(t1, t2)
            .begin(t1)
            .acquire(t1, l)
            .write(t1, x)
            .release(t1, l)
            .end(t1)
            .begin(t2)
            .read(t2, x)
            .end(t2)
            .join(t1, t2);
        let tr = tb.finish();
        let text = write_trace(&tr);
        let back = parse_trace(&text).unwrap();
        assert_eq!(back.events(), tr.events());
        assert_eq!(back.num_threads(), tr.num_threads());
    }
}
