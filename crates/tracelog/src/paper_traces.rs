//! The paper's running-example traces ρ1–ρ4 (Figures 1–4).
//!
//! These traces are used throughout Sections 2–4 to motivate the `⋖_E`
//! relation and to illustrate AeroDrome's clock updates (Figures 5–7).
//! They double as golden tests: ρ1 is conflict serializable, ρ2–ρ4 are
//! not, with violations detected at e6, e7 and e11 respectively
//! (one-based event positions).

use crate::trace::{Trace, TraceBuilder};

/// Figure 1 — trace ρ1: three transactions with `T3 ⋖ T1 ⋖ T2`;
/// conflict **serializable** (equivalent serial order `T3 T1 T2`).
///
/// ```text
/// e1  t1 ⊲        e6  t3 ⊲
/// e2  t1 w(x)     e7  t3 w(z)
/// e3  t2 ⊲        e8  t3 ⊳
/// e4  t2 r(x)     e9  t1 r(z)
/// e5  t2 ⊳        e10 t1 ⊳
/// ```
#[must_use]
pub fn rho1() -> Trace {
    let mut tb = TraceBuilder::new();
    let (t1, t2, t3) = (tb.thread("t1"), tb.thread("t2"), tb.thread("t3"));
    let (x, z) = (tb.var("x"), tb.var("z"));
    tb.begin(t1).write(t1, x);
    tb.begin(t2).read(t2, x).end(t2);
    tb.begin(t3).write(t3, z).end(t3);
    tb.read(t1, z).end(t1);
    tb.finish()
}

/// Figure 2 — trace ρ2: the violation is witnessed by a `≤CHB` path that
/// starts and ends in transaction `T1`. AeroDrome reports at **e6**
/// (`C⊲_{t1} ⊑ W_y`, Figure 5).
///
/// ```text
/// e1 t1 ⊲       e5 t2 w(y)
/// e2 t2 ⊲       e6 t1 r(y)   ← violation
/// e3 t1 w(x)    e7 t1 ⊳
/// e4 t2 r(x)    e8 t2 ⊳
/// ```
#[must_use]
pub fn rho2() -> Trace {
    let mut tb = TraceBuilder::new();
    let (t1, t2) = (tb.thread("t1"), tb.thread("t2"));
    let (x, y) = (tb.var("x"), tb.var("y"));
    tb.begin(t1);
    tb.begin(t2);
    tb.write(t1, x);
    tb.read(t2, x);
    tb.write(t2, y);
    tb.read(t1, y);
    tb.end(t1);
    tb.end(t2);
    tb.finish()
}

/// Figure 3 — trace ρ3: a violation with **no** `≤CHB` path returning to
/// the same transaction; detecting it needs the `⋖_E` relation. AeroDrome
/// reports at **e7**, the end event of `t1` (`C⊲_{t2} ⊑ C_{t1}`,
/// Figure 6).
///
/// ```text
/// e1 t1 ⊲       e5 t1 r(y)
/// e2 t2 ⊲       e6 t2 r(x)
/// e3 t1 w(x)    e7 t1 ⊳      ← violation
/// e4 t2 w(y)    e8 t2 ⊳
/// ```
#[must_use]
pub fn rho3() -> Trace {
    let mut tb = TraceBuilder::new();
    let (t1, t2) = (tb.thread("t1"), tb.thread("t2"));
    let (x, y) = (tb.var("x"), tb.var("y"));
    tb.begin(t1);
    tb.begin(t2);
    tb.write(t1, x);
    tb.write(t2, y);
    tb.read(t1, y);
    tb.read(t2, x);
    tb.end(t1);
    tb.end(t2);
    tb.finish()
}

/// Figure 4 — trace ρ4: ρ1 modified so each transaction is a `⋖_Txn`
/// predecessor of the other; the dependency `T1 ⋖ T2` is discovered by a
/// *future* event. AeroDrome reports at **e11** (`C⊲_{t1} ⊑ W_z`,
/// Figure 7).
///
/// ```text
/// e1  t1 ⊲        e7  t3 ⊲
/// e2  t1 w(x)     e8  t3 r(y)
/// e3  t2 ⊲        e9  t3 w(z)
/// e4  t2 w(y)     e10 t3 ⊳
/// e5  t2 r(x)     e11 t1 r(z)   ← violation
/// e6  t2 ⊳        e12 t1 ⊳
/// ```
#[must_use]
pub fn rho4() -> Trace {
    let mut tb = TraceBuilder::new();
    let (t1, t2, t3) = (tb.thread("t1"), tb.thread("t2"), tb.thread("t3"));
    let (x, y, z) = (tb.var("x"), tb.var("y"), tb.var("z"));
    tb.begin(t1).write(t1, x);
    tb.begin(t2).write(t2, y).read(t2, x).end(t2);
    tb.begin(t3).read(t3, y).write(t3, z).end(t3);
    tb.read(t1, z).end(t1);
    tb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MetaInfo;
    use crate::txn::Transactions;
    use crate::validate::validate;

    #[test]
    fn all_paper_traces_are_well_formed_and_closed() {
        for (name, tr) in [("ρ1", rho1()), ("ρ2", rho2()), ("ρ3", rho3()), ("ρ4", rho4())] {
            let summary = validate(&tr).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(summary.is_closed(), "{name} left open state");
        }
    }

    #[test]
    fn rho1_shape_matches_figure_1() {
        let tr = rho1();
        assert_eq!(tr.len(), 10);
        assert_eq!(tr.num_threads(), 3);
        let txns = Transactions::segment(&tr);
        assert_eq!(txns.non_unary_count(), 3);
        // T1 spans e1..e10, i.e. offsets 0..=9.
        assert_eq!(txns[0].begin.unwrap().index(), 0);
        assert_eq!(txns[0].end.unwrap().index(), 9);
    }

    #[test]
    fn rho2_rho3_have_two_transactions() {
        for tr in [rho2(), rho3()] {
            assert_eq!(tr.len(), 8);
            let info = MetaInfo::of(&tr);
            assert_eq!(info.transactions, 2);
            assert_eq!(info.vars, 2);
            assert_eq!(info.threads, 2);
        }
    }

    #[test]
    fn rho4_shape_matches_figure_4() {
        let tr = rho4();
        assert_eq!(tr.len(), 12);
        let info = MetaInfo::of(&tr);
        assert_eq!(info.transactions, 3);
        assert_eq!(info.vars, 3);
        assert_eq!((info.reads, info.writes), (3, 3));
    }
}
