//! Dense, interned identifiers for threads, locks and variables.
//!
//! The analyses index their per-thread / per-lock / per-variable state by
//! dense `u32` indices; the original names from a logged trace are kept in
//! an [`Interner`] so reports remain human-readable.

use std::collections::HashMap;
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a dense index.
            #[must_use]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect(concat!(
                    stringify!($name),
                    " index exceeds u32"
                )))
            }

            /// The dense index backing this identifier.
            #[must_use]
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// A dense thread identifier (`t` in the paper's `⟨t, op⟩`).
    ThreadId,
    "t"
);
define_id!(
    /// A dense lock identifier (`ℓ` in `acq(ℓ)` / `rel(ℓ)`).
    LockId,
    "l"
);
define_id!(
    /// A dense memory-location identifier (`x` in `r(x)` / `w(x)`).
    VarId,
    "x"
);

/// An order-preserving string interner mapping names to dense indices.
///
/// # Examples
///
/// ```
/// let mut i = tracelog::Interner::new();
/// let a = i.intern("main");
/// let b = i.intern("worker");
/// assert_eq!(i.intern("main"), a);
/// assert_eq!(i.name(b), "worker");
/// assert_eq!(i.len(), 2);
/// ```
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Interner {
    names: Vec<String>,
    index: HashMap<String, usize>,
}

impl Interner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its dense index (stable across calls).
    pub fn intern(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), i);
        i
    }

    /// Looks up an already-interned name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// The name behind dense index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` was never returned by [`Interner::intern`].
    #[must_use]
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Number of distinct interned names.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no name has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over names in index order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// Forgets every interned name, keeping the table capacity — the
    /// session reset for sources reused across traces whose name sets
    /// differ.
    pub fn clear(&mut self) {
        self.names.clear();
        self.index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_indices() {
        let t = ThreadId::from_index(3);
        assert_eq!(t.index(), 3);
        assert_eq!(t.to_string(), "t3");
        assert_eq!(usize::from(t), 3);
        assert_eq!(LockId::from_index(0).to_string(), "l0");
        assert_eq!(VarId::from_index(9).to_string(), "x9");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ThreadId::from_index(1) < ThreadId::from_index(2));
    }

    #[test]
    fn interner_is_idempotent_and_dense() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        let a = i.intern("x");
        let b = i.intern("y");
        assert_eq!((a, b), (0, 1));
        assert_eq!(i.intern("x"), 0);
        assert_eq!(i.len(), 2);
        assert_eq!(i.get("y"), Some(1));
        assert_eq!(i.get("z"), None);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec!["x", "y"]);
    }
}
