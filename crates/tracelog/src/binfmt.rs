//! The `.rbt` binary trace format — compact on-disk encoding with
//! mmap-backed zero-copy ingest.
//!
//! The `.std` text format is the *interchange* format; parsing it is a
//! per-line split, a per-field name lookup and an interner probe per
//! event, and at a million events that parse dominates the end-to-end
//! checking pipeline. This module defines the on-*disk* counterpart of
//! the [`crate::wire`] service codec: the same fixed-width 9-byte event
//! records ([`crate::wire::EVENT_RECORD_BYTES`]) and the same
//! variable-width name records, arranged for random access:
//!
//! ```text
//! ┌────────────────┐ offset 0
//! │ header (16 B)  │ magic "RBT1\r\n\x1a\n" · version u32 LE ·
//! │                │ chunk_events u32 LE
//! ├────────────────┤ offset 16
//! │ event records  │ event_count × 9 B wire records, trace order
//! ├────────────────┤ names_offset
//! │ name records   │ wire name records: threads, locks, vars
//! │                │ (dense index order per id space)
//! ├────────────────┤ index_offset
//! │ chunk index    │ chunk_count × 24 B entries
//! ├────────────────┤ file_len − 48
//! │ footer (48 B)  │ index_offset u64 · names_offset u64 ·
//! │                │ names_len u64 · event_count u64 ·
//! │                │ chunk_count u64 · end magic "RBT1END\n"
//! └────────────────┘
//! ```
//!
//! Each chunk-index entry records `{first_event u64, events u32,
//! threads u32, locks u32, vars u32}` — the half-open event range
//! `[first_event, first_event + events)` plus the *cumulative* interner
//! sizes once the chunk has been read. Because records are fixed-width,
//! a chunk boundary can never split a record, and a reader can start
//! decoding at any chunk boundary without touching the bytes before it:
//! that is what makes chunk-parallel ingest of a single file possible
//! (N readers claim chunks and feed the parallel runtime's bounded
//! channels). The name tables live *after* the events so the writer is a
//! single forward pass — no seeking, so the format can be written to a
//! pipe.
//!
//! Reading goes through [`BinTrace`] (open + validate + name preload)
//! and [`MmapSource`], an [`EventSource`] that decodes records straight
//! out of an `mmap`'d region — no line parse, no interner probe, no
//! copy of the event region. Where `mmap` is unavailable (or fails),
//! the same type transparently falls back to positioned `pread`-style
//! reads into a scratch buffer, and non-Unix builds read the file into
//! memory once; semantics are identical across the three backings.
//!
//! [`AnySource`] sniffs the 8-byte magic and serves either encoding
//! behind one type, which is how every ingesting `rapid` subcommand
//! auto-detects the format.
//!
//! # Examples
//!
//! ```no_run
//! use tracelog::binfmt::{write_binary, AnySource, DEFAULT_CHUNK_EVENTS};
//! use tracelog::stream::EventSource;
//!
//! let mut source = tracelog::StdReader::new("t1|begin|0\nt1|end|1\n".as_bytes());
//! let mut out = std::io::BufWriter::new(std::fs::File::create("trace.rbt")?);
//! write_binary(&mut source, &mut out, DEFAULT_CHUNK_EVENTS)?;
//! drop(out);
//!
//! let mut back = AnySource::open(std::path::Path::new("trace.rbt"))?;
//! while let Some(event) = back.next_event()? {
//!     let _ = back.names().display_event(&event);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use crate::ids::Interner;
use crate::stream::{EventBatch, EventSource, SourceError, SourceNames, StdReader};
use crate::trace::Event;
use crate::wire::{self, NameKind, WireError, EVENT_RECORD_BYTES};
use crate::EventId;

/// The 8-byte file magic opening every `.rbt` file. Modeled on the PNG
/// signature: the CR-LF and lone-LF bytes catch line-ending translation,
/// `\x1a` stops accidental `type` on DOS-descended shells.
pub const MAGIC: [u8; 8] = *b"RBT1\x0D\x0A\x1A\x0A";

/// The 8-byte end magic closing every `.rbt` file — a cheap whole-file
/// truncation check before any offset in the footer is trusted.
pub const END_MAGIC: [u8; 8] = *b"RBT1END\x0A";

/// The only format version this build reads and writes. Versioning rule
/// (shared with [`crate::wire`]): record layouts are append-only; any
/// change to existing field widths or the region order bumps this.
pub const FORMAT_VERSION: u32 = 1;

/// Header size: magic + version + chunk_events.
pub const HEADER_BYTES: usize = 16;

/// Footer size: five u64 fields + end magic.
pub const FOOTER_BYTES: usize = 48;

/// Size of one chunk-index entry: `first_event u64 · events u32 ·
/// threads u32 · locks u32 · vars u32`.
pub const CHUNK_ENTRY_BYTES: usize = 24;

/// Default events per chunk for the writer: big enough that per-chunk
/// overhead (an index entry, a claim in the parallel reader) is noise,
/// small enough that a 1M-event file still splits into ~16 chunks for
/// chunk-parallel ingest. 65 536 events ≈ 576 KiB of records.
pub const DEFAULT_CHUNK_EVENTS: u32 = 1 << 16;

/// A structurally invalid `.rbt` file, with chunk + record attribution
/// where the failure is inside the event region (mirroring the 1-based
/// line numbers [`StdReader`] errors carry; records are 0-based because
/// the record index *is* the event's trace offset).
#[derive(Debug)]
pub enum BinfmtError {
    /// The underlying file could not be read.
    Io(io::Error),
    /// The file does not start with [`MAGIC`] — it is not a `.rbt` file.
    NotBinary,
    /// The file declares a format version this build does not read.
    Version(u32),
    /// A structural invariant of the container failed (truncation,
    /// inconsistent region offsets, bad end magic).
    Corrupt {
        /// Which invariant failed.
        what: &'static str,
    },
    /// A chunk-index entry is inconsistent with its neighbours or the
    /// footer totals.
    Index {
        /// The 0-based index of the offending entry.
        chunk: usize,
        /// Which invariant failed.
        what: &'static str,
    },
    /// The name region did not decode as dense wire name records.
    Names(WireError),
    /// An event record inside a chunk did not decode.
    Record {
        /// The 0-based chunk holding the record.
        chunk: usize,
        /// The 0-based record index — equal to the event's trace offset.
        record: u64,
        /// The wire-level decode failure.
        error: WireError,
    },
}

impl fmt::Display for BinfmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "{e}"),
            Self::NotBinary => write!(f, "not a .rbt binary trace (bad magic)"),
            Self::Version(v) => {
                write!(f, "unsupported .rbt format version {v} (this build reads {FORMAT_VERSION})")
            }
            Self::Corrupt { what } => write!(f, "corrupt .rbt file: {what}"),
            Self::Index { chunk, what } => {
                write!(f, "corrupt .rbt chunk index entry {chunk}: {what}")
            }
            Self::Names(e) => write!(f, "corrupt .rbt name table: {e}"),
            Self::Record { chunk, record, error } => {
                write!(f, "record {record} (chunk {chunk}): {error}")
            }
        }
    }
}

impl std::error::Error for BinfmtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Names(e) | Self::Record { error: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for BinfmtError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Streams a source into the `.rbt` binary format in one forward pass,
/// cutting a chunk-index entry every `chunk_events` events; returns the
/// number of events written. The inverse of binary ingest is
/// [`crate::stream::copy_events`]; for a trace whose `<loc>` fields are
/// the running 0-based offsets (everything this workspace emits), the
/// `.std → .rbt → .std` round trip is byte-exact.
///
/// # Panics
///
/// Panics if `chunk_events == 0` (a chunk could never make progress).
///
/// # Errors
///
/// Propagates source errors and write failures.
pub fn write_binary<S, W>(
    source: &mut S,
    out: &mut W,
    chunk_events: u32,
) -> Result<u64, SourceError>
where
    S: EventSource + ?Sized,
    W: Write,
{
    assert!(chunk_events > 0, "chunk_events must be positive");
    let mut header = Vec::with_capacity(HEADER_BYTES);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&chunk_events.to_le_bytes());
    out.write_all(&header)?;

    let mut batch = EventBatch::with_target(chunk_events as usize);
    let mut buf = Vec::new();
    let mut chunks: Vec<ChunkMeta> = Vec::new();
    let mut event_count = 0u64;
    loop {
        let n = source.next_batch(&mut batch)?;
        if n == 0 {
            break;
        }
        buf.clear();
        wire::encode_events(batch.events(), &mut buf);
        out.write_all(&buf)?;
        let names = source.names();
        chunks.push(ChunkMeta {
            first_event: event_count,
            events: u32::try_from(n).expect("batch target fits u32"),
            threads: names.threads.len() as u32,
            locks: names.locks.len() as u32,
            vars: names.vars.len() as u32,
        });
        event_count += n as u64;
    }

    buf.clear();
    let names = source.names();
    wire::encode_new_names(NameKind::Thread, names.threads, 0, &mut buf);
    wire::encode_new_names(NameKind::Lock, names.locks, 0, &mut buf);
    wire::encode_new_names(NameKind::Var, names.vars, 0, &mut buf);
    out.write_all(&buf)?;
    let names_offset = HEADER_BYTES as u64 + event_count * EVENT_RECORD_BYTES as u64;
    let names_len = buf.len() as u64;

    buf.clear();
    for chunk in &chunks {
        buf.extend_from_slice(&chunk.first_event.to_le_bytes());
        buf.extend_from_slice(&chunk.events.to_le_bytes());
        buf.extend_from_slice(&chunk.threads.to_le_bytes());
        buf.extend_from_slice(&chunk.locks.to_le_bytes());
        buf.extend_from_slice(&chunk.vars.to_le_bytes());
    }
    out.write_all(&buf)?;
    let index_offset = names_offset + names_len;

    buf.clear();
    buf.extend_from_slice(&index_offset.to_le_bytes());
    buf.extend_from_slice(&names_offset.to_le_bytes());
    buf.extend_from_slice(&names_len.to_le_bytes());
    buf.extend_from_slice(&event_count.to_le_bytes());
    buf.extend_from_slice(&(chunks.len() as u64).to_le_bytes());
    buf.extend_from_slice(&END_MAGIC);
    out.write_all(&buf)?;
    out.flush()?;
    Ok(event_count)
}

/// One chunk-index entry: the event range a reader can decode
/// independently, plus the cumulative name-table sizes once every event
/// up to and including this chunk has been read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Trace offset of the chunk's first event.
    pub first_event: u64,
    /// Number of events in the chunk.
    pub events: u32,
    /// Thread-table size after this chunk.
    pub threads: u32,
    /// Lock-table size after this chunk.
    pub locks: u32,
    /// Variable-table size after this chunk.
    pub vars: u32,
}

/// The read side of an `.rbt` file: validated container metadata, the
/// preloaded name tables, the chunk index, and the (mapped or seekable)
/// event region. Cheap to share behind an [`Arc`]: every [`MmapSource`]
/// — the whole-file reader and each chunk-parallel reader — borrows the
/// same mapping.
#[derive(Debug)]
pub struct BinTrace {
    backing: Backing,
    chunk_events: u32,
    event_count: u64,
    chunks: Vec<ChunkMeta>,
    threads: Interner,
    locks: Interner,
    vars: Interner,
}

impl BinTrace {
    /// Opens and fully validates an `.rbt` file: both magics, the format
    /// version, region bounds, chunk-index consistency (contiguous
    /// ranges, monotone name counts, totals matching the footer) and the
    /// name region (decoded eagerly — the tables are small). The event
    /// region is *not* decoded here; records are bounds-checked lazily
    /// as sources read them.
    ///
    /// # Errors
    ///
    /// Any structural violation yields a typed [`BinfmtError`]; I/O
    /// failures are wrapped in [`BinfmtError::Io`].
    pub fn open(path: &Path) -> Result<Self, BinfmtError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < (HEADER_BYTES + FOOTER_BYTES) as u64 {
            return Err(BinfmtError::Corrupt { what: "file shorter than header + footer" });
        }
        let backing = Backing::new(file, file_len)?;
        let mut scratch = Vec::new();

        let header = backing.read(0, HEADER_BYTES, &mut scratch)?;
        if header[..8] != MAGIC {
            return Err(BinfmtError::NotBinary);
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("4-byte slice"));
        if version != FORMAT_VERSION {
            return Err(BinfmtError::Version(version));
        }
        let chunk_events = u32::from_le_bytes(header[12..16].try_into().expect("4-byte slice"));
        if chunk_events == 0 {
            return Err(BinfmtError::Corrupt { what: "chunk_events is zero" });
        }

        let footer = backing.read(file_len - FOOTER_BYTES as u64, FOOTER_BYTES, &mut scratch)?;
        if footer[40..48] != END_MAGIC {
            return Err(BinfmtError::Corrupt { what: "bad end magic (truncated file?)" });
        }
        let word = |i: usize| u64::from_le_bytes(footer[i * 8..i * 8 + 8].try_into().expect("8 B"));
        let (index_offset, names_offset, names_len, event_count, chunk_count) =
            (word(0), word(1), word(2), word(3), word(4));

        let events_end = HEADER_BYTES as u64 + event_count * EVENT_RECORD_BYTES as u64;
        if names_offset != events_end {
            return Err(BinfmtError::Corrupt { what: "name region does not follow event region" });
        }
        if index_offset != names_offset + names_len {
            return Err(BinfmtError::Corrupt { what: "chunk index does not follow name region" });
        }
        let index_len = chunk_count * CHUNK_ENTRY_BYTES as u64;
        if index_offset + index_len != file_len - FOOTER_BYTES as u64 {
            return Err(BinfmtError::Corrupt { what: "chunk index does not end at the footer" });
        }

        let mut threads = Interner::new();
        let mut locks = Interner::new();
        let mut vars = Interner::new();
        let names = backing.read(names_offset, names_len as usize, &mut scratch)?;
        wire::decode_names(names, &mut threads, &mut locks, &mut vars)
            .map_err(BinfmtError::Names)?;

        let chunk_count = usize::try_from(chunk_count).expect("chunk count fits usize");
        let mut chunks = Vec::with_capacity(chunk_count);
        let index = backing.read(index_offset, chunk_count * CHUNK_ENTRY_BYTES, &mut scratch)?;
        let mut next_event = 0u64;
        let (mut t, mut l, mut v) = (0u32, 0u32, 0u32);
        for (i, entry) in index.chunks_exact(CHUNK_ENTRY_BYTES).enumerate() {
            let meta = ChunkMeta {
                first_event: u64::from_le_bytes(entry[0..8].try_into().expect("8 B")),
                events: u32::from_le_bytes(entry[8..12].try_into().expect("4 B")),
                threads: u32::from_le_bytes(entry[12..16].try_into().expect("4 B")),
                locks: u32::from_le_bytes(entry[16..20].try_into().expect("4 B")),
                vars: u32::from_le_bytes(entry[20..24].try_into().expect("4 B")),
            };
            if meta.first_event != next_event {
                return Err(BinfmtError::Index { chunk: i, what: "event range is not contiguous" });
            }
            if meta.events == 0 {
                return Err(BinfmtError::Index { chunk: i, what: "chunk holds no events" });
            }
            if meta.events > chunk_events {
                return Err(BinfmtError::Index { chunk: i, what: "chunk exceeds chunk_events" });
            }
            if meta.threads < t || meta.locks < l || meta.vars < v {
                return Err(BinfmtError::Index { chunk: i, what: "name counts decreased" });
            }
            (t, l, v) = (meta.threads, meta.locks, meta.vars);
            next_event = meta.first_event + u64::from(meta.events);
            chunks.push(meta);
        }
        if next_event != event_count {
            return Err(BinfmtError::Corrupt { what: "chunk events do not sum to event_count" });
        }
        if let Some(last) = chunks.last() {
            if (last.threads as usize, last.locks as usize, last.vars as usize)
                != (threads.len(), locks.len(), vars.len())
            {
                return Err(BinfmtError::Corrupt {
                    what: "final chunk name counts disagree with the name region",
                });
            }
        }

        Ok(Self { backing, chunk_events, event_count, chunks, threads, locks, vars })
    }

    /// Total number of events in the trace.
    #[must_use]
    pub fn event_count(&self) -> u64 {
        self.event_count
    }

    /// The writer's events-per-chunk setting (the last chunk may be
    /// shorter).
    #[must_use]
    pub fn chunk_events(&self) -> u32 {
        self.chunk_events
    }

    /// The validated chunk index.
    #[must_use]
    pub fn chunks(&self) -> &[ChunkMeta] {
        &self.chunks
    }

    /// The preloaded name tables.
    #[must_use]
    pub fn names(&self) -> SourceNames<'_> {
        SourceNames { threads: &self.threads, locks: &self.locks, vars: &self.vars }
    }

    /// The 0-based chunk holding trace offset `record` (which must be
    /// `< event_count`).
    #[must_use]
    pub fn chunk_of(&self, record: u64) -> usize {
        debug_assert!(record < self.event_count, "record out of range");
        self.chunks.partition_point(|c| c.first_event <= record).saturating_sub(1)
    }

    /// Whether the event region is memory-mapped (`false` means the
    /// positioned-read or in-memory fallback is serving reads).
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::Mapped(_))
    }
}

/// The bytes behind a [`BinTrace`], in preference order.
#[derive(Debug)]
enum Backing {
    /// A read-only private `mmap` of the whole file (Unix): reads are
    /// zero-copy slices of the mapping.
    #[cfg_attr(not(unix), allow(dead_code))]
    Mapped(map::Mmap),
    /// Positioned reads (`pread`) into a caller scratch buffer — the
    /// fallback when mapping fails; no shared cursor, so chunk-parallel
    /// readers stay independent.
    #[cfg(unix)]
    File(File),
    /// The whole file read into memory once (non-Unix builds; on Unix
    /// the positioned-read fallback covers every case, including empty
    /// files — `mmap` of length 0 is an error).
    #[cfg_attr(unix, allow(dead_code))]
    Owned(Vec<u8>),
}

impl Backing {
    fn new(file: File, file_len: u64) -> io::Result<Self> {
        #[cfg(unix)]
        {
            let len = usize::try_from(file_len)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
            if len > 0 {
                if let Ok(m) = map::Mmap::new(&file, len) {
                    return Ok(Self::Mapped(m));
                }
            }
            Ok(Self::File(file))
        }
        #[cfg(not(unix))]
        {
            let _ = file_len;
            let mut bytes = Vec::new();
            let mut file = file;
            file.read_to_end(&mut bytes)?;
            Ok(Self::Owned(bytes))
        }
    }

    /// Serves `len` bytes at `offset`: a borrowed slice of the mapping
    /// (or owned bytes), or a `pread` into `scratch`. Short regions are
    /// an I/O error (`UnexpectedEof`), never a panic — the offsets come
    /// from disk.
    fn read<'a>(
        &'a self,
        offset: u64,
        len: usize,
        scratch: &'a mut Vec<u8>,
    ) -> io::Result<&'a [u8]> {
        match self {
            Self::Mapped(m) => slice_region(m.bytes(), offset, len),
            #[cfg(unix)]
            Self::File(file) => {
                use std::os::unix::fs::FileExt;
                scratch.resize(len, 0);
                file.read_exact_at(scratch, offset)?;
                Ok(scratch)
            }
            Self::Owned(bytes) => slice_region(bytes, offset, len),
        }
    }
}

fn slice_region(bytes: &[u8], offset: u64, len: usize) -> io::Result<&[u8]> {
    usize::try_from(offset)
        .ok()
        .and_then(|o| o.checked_add(len).map(|end| (o, end)))
        .and_then(|(o, end)| bytes.get(o..end))
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "region beyond end of file"))
}

/// The raw `mmap` FFI, quarantined: the only unsafe code in the crate.
/// No `libc` crate — `std` already links the platform libc, so the two
/// syscall wrappers are declared directly with the POSIX-mandated
/// constants (`PROT_READ = 1`, `MAP_PRIVATE = 2` on every Unix this
/// workspace targets).
#[cfg(unix)]
mod map {
    #![allow(unsafe_code)]

    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;
    use std::ptr::NonNull;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// A read-only private mapping of a whole file, unmapped on drop.
    #[derive(Debug)]
    pub(super) struct Mmap {
        ptr: NonNull<u8>,
        len: usize,
    }

    // SAFETY: the mapping is read-only (PROT_READ) and private, so
    // concurrent reads from any thread are safe; the pointer is never
    // exposed mutably.
    unsafe impl Send for Mmap {}
    // SAFETY: as above — shared &self access only ever reads.
    unsafe impl Sync for Mmap {}

    impl Mmap {
        pub(super) fn new(file: &File, len: usize) -> io::Result<Self> {
            assert!(len > 0, "empty files use the owned backing");
            // SAFETY: a fresh anonymous-address PROT_READ|MAP_PRIVATE
            // mapping over an open fd; the kernel validates fd and
            // length, and failure is reported as MAP_FAILED.
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr.is_null() || ptr as usize == usize::MAX {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { ptr: NonNull::new(ptr.cast()).expect("checked non-null"), len })
        }

        pub(super) fn bytes(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes for the lifetime of `self` (unmapped only in Drop).
            unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` are exactly the mapping returned by
            // `mmap` in `new`; after this the struct is gone, so no
            // dangling reads are possible.
            unsafe {
                munmap(self.ptr.as_ptr().cast(), self.len);
            }
        }
    }
}

/// An [`EventSource`] decoding events straight out of an open
/// [`BinTrace`] — the binary counterpart of [`StdReader`]. The name is
/// the *preferred* backing; when mapping is unavailable the same type
/// serves positioned reads with identical semantics (see the backing
/// preference order on [`BinTrace`]).
///
/// A source covers either the whole trace ([`MmapSource::new`] /
/// [`MmapSource::open`]) or a single chunk ([`MmapSource::for_chunk`]) —
/// the unit the chunk-parallel ingest mode hands to each reader thread.
/// Decode errors are **fatal** (the latch mirrors [`StdReader`]) and
/// carry chunk + record attribution via [`BinfmtError::Record`].
#[derive(Debug)]
pub struct MmapSource {
    trace: Arc<BinTrace>,
    start: u64,
    next: u64,
    end: u64,
    scratch: Vec<u8>,
    done: bool,
}

impl MmapSource {
    /// Opens `path` and serves the whole trace.
    ///
    /// # Errors
    ///
    /// Propagates [`BinTrace::open`] failures.
    pub fn open(path: &Path) -> Result<Self, BinfmtError> {
        Ok(Self::new(Arc::new(BinTrace::open(path)?)))
    }

    /// A source over the whole of an already-open trace.
    #[must_use]
    pub fn new(trace: Arc<BinTrace>) -> Self {
        let end = trace.event_count;
        Self { trace, start: 0, next: 0, end, scratch: Vec::new(), done: false }
    }

    /// A source over a single chunk of an already-open trace — the unit
    /// of chunk-parallel ingest. Each reader thread holds one of these
    /// per claimed chunk; they share the mapping through the [`Arc`] and
    /// have no mutable state in common.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is out of range.
    #[must_use]
    pub fn for_chunk(trace: Arc<BinTrace>, chunk: usize) -> Self {
        let meta = trace.chunks[chunk];
        let (start, end) = (meta.first_event, meta.first_event + u64::from(meta.events));
        Self { trace, start, next: start, end, scratch: Vec::new(), done: false }
    }

    /// Re-aims an existing source at another chunk, keeping the scratch
    /// buffer warm — how a chunk-parallel reader thread walks its
    /// claimed chunks without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is out of range.
    pub fn reset_to_chunk(&mut self, chunk: usize) {
        let meta = self.trace.chunks[chunk];
        self.start = meta.first_event;
        self.next = meta.first_event;
        self.end = meta.first_event + u64::from(meta.events);
        self.done = false;
    }

    /// The shared trace this source reads.
    #[must_use]
    pub fn trace(&self) -> &Arc<BinTrace> {
        &self.trace
    }

    fn record_error(&mut self, record: u64, error: WireError) -> SourceError {
        self.done = true;
        let chunk = self.trace.chunk_of(record);
        SourceError::Binary(BinfmtError::Record { chunk, record, error })
    }
}

impl EventSource for MmapSource {
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        if self.done || self.next >= self.end {
            return Ok(None);
        }
        let offset = HEADER_BYTES as u64 + self.next * EVENT_RECORD_BYTES as u64;
        let bytes = self
            .trace
            .backing
            .read(offset, EVENT_RECORD_BYTES, &mut self.scratch)
            .map_err(SourceError::Io)?;
        match wire::decode_record(bytes) {
            Ok(event) => {
                self.next += 1;
                Ok(Some(event))
            }
            Err(e) => Err(self.record_error(self.next, e)),
        }
    }

    /// Native batch decode: one bounds check and one fixed-width decode
    /// loop per refill, straight from the mapping — no copy of the
    /// record bytes on the mmap and in-memory backings.
    fn next_batch(&mut self, batch: &mut EventBatch) -> Result<usize, SourceError> {
        batch.clear();
        if self.done || self.next >= self.end {
            return Ok(0);
        }
        let n = (self.end - self.next).min(batch.target() as u64);
        let n = usize::try_from(n).expect("batch-sized count");
        let len = n * EVENT_RECORD_BYTES;
        // A batch refill covers whole records by construction — the
        // satellite invariant that chunk/batch boundaries never split a
        // record mid-way.
        debug_assert!(len.is_multiple_of(EVENT_RECORD_BYTES));
        let offset = HEADER_BYTES as u64 + self.next * EVENT_RECORD_BYTES as u64;
        let bytes =
            self.trace.backing.read(offset, len, &mut self.scratch).map_err(SourceError::Io)?;
        match wire::decode_events(bytes, batch) {
            Ok(decoded) => {
                debug_assert_eq!(decoded, n);
                self.next += decoded as u64;
                Ok(decoded)
            }
            // The decoded prefix stays in `batch`, mirroring the
            // StdReader contract; the failing record's trace offset is
            // the cursor plus that prefix.
            Err(e) => {
                let record = self.next + batch.len() as u64;
                Err(self.record_error(record, e))
            }
        }
    }

    fn names(&self) -> SourceNames<'_> {
        self.trace.names()
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.end - self.start)
    }

    fn position_of(&self, event: EventId) -> Option<String> {
        let record = event.index() as u64;
        (record < self.trace.event_count)
            .then(|| format!("record {record} (chunk {})", self.trace.chunk_of(record)))
    }
}

/// A source over either trace encoding, selected by sniffing the file
/// magic — how every ingesting subcommand accepts `.std` and `.rbt`
/// interchangeably. Text errors carry line numbers, binary errors carry
/// chunk + record indices; both surface through
/// [`EventSource::position_of`].
#[derive(Debug)]
pub enum AnySource {
    /// The text `.std` parser (boxed: the buffered reader dwarfs the
    /// mmap handle, and one allocation per opened file is nothing).
    Std(Box<StdReader<BufReader<File>>>),
    /// The binary `.rbt` reader.
    Bin(MmapSource),
}

impl AnySource {
    /// Opens `path`, sniffing the first 8 bytes for [`MAGIC`]: a match
    /// opens the validated binary reader, anything else (including files
    /// shorter than the magic) streams through the text parser.
    ///
    /// # Errors
    ///
    /// I/O failures, and [`SourceError::Binary`] when the magic matches
    /// but the container is structurally invalid.
    pub fn open(path: &Path) -> Result<Self, SourceError> {
        let mut file = File::open(path)?;
        let mut magic = [0u8; 8];
        let mut filled = 0;
        while filled < magic.len() {
            let n = file.read(&mut magic[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        if filled == magic.len() && magic == MAGIC {
            drop(file);
            return Ok(Self::Bin(MmapSource::open(path).map_err(SourceError::Binary)?));
        }
        file.seek(SeekFrom::Start(0))?;
        Ok(Self::Std(Box::new(StdReader::new(BufReader::new(file)))))
    }

    /// Whether the binary reader is serving this source.
    #[must_use]
    pub fn is_binary(&self) -> bool {
        matches!(self, Self::Bin(_))
    }
}

impl EventSource for AnySource {
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        match self {
            Self::Std(s) => s.next_event(),
            Self::Bin(s) => s.next_event(),
        }
    }

    fn next_batch(&mut self, batch: &mut EventBatch) -> Result<usize, SourceError> {
        match self {
            Self::Std(s) => s.next_batch(batch),
            Self::Bin(s) => s.next_batch(batch),
        }
    }

    fn names(&self) -> SourceNames<'_> {
        match self {
            Self::Std(s) => s.names(),
            Self::Bin(s) => s.names(),
        }
    }

    fn size_hint(&self) -> Option<u64> {
        match self {
            Self::Std(s) => s.size_hint(),
            Self::Bin(s) => s.size_hint(),
        }
    }

    fn position_of(&self, event: EventId) -> Option<String> {
        match self {
            Self::Std(s) => s.position_of(event),
            Self::Bin(s) => s.position_of(event),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{collect_trace, copy_events};
    use crate::trace::TraceBuilder;
    use std::fs;
    use std::path::PathBuf;

    fn sample() -> crate::Trace {
        let mut tb = TraceBuilder::new();
        let (t1, t2) = (tb.thread("t1"), tb.thread("t2"));
        let l = tb.lock("m");
        let x = tb.var("x");
        tb.fork(t1, t2)
            .begin(t1)
            .acquire(t1, l)
            .write(t1, x)
            .release(t1, l)
            .end(t1)
            .begin(t2)
            .read(t2, x)
            .end(t2)
            .join(t1, t2);
        tb.finish()
    }

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tracelog-binfmt-test");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_sample(name: &str, chunk_events: u32) -> PathBuf {
        let path = temp(name);
        let mut bytes = Vec::new();
        write_binary(&mut sample().stream(), &mut bytes, chunk_events).unwrap();
        fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn binary_roundtrip_is_bit_identical() {
        let trace = sample();
        let path = write_sample("roundtrip.rbt", DEFAULT_CHUNK_EVENTS);
        let mut source = MmapSource::open(&path).unwrap();
        assert_eq!(source.size_hint(), Some(trace.len() as u64));
        let back = collect_trace(&mut source).unwrap();
        assert_eq!(back.events(), trace.events());
        assert_eq!(back.thread_names(), trace.thread_names());
        assert_eq!(back.lock_names(), trace.lock_names());
        assert_eq!(back.var_names(), trace.var_names());
    }

    #[test]
    fn std_text_roundtrips_through_binary_byte_exactly() {
        let trace = sample();
        let mut std_text = Vec::new();
        copy_events(&mut trace.stream(), &mut std_text).unwrap();

        let path = temp("fixpoint.rbt");
        let mut bytes = Vec::new();
        write_binary(&mut StdReader::new(std_text.as_slice()), &mut bytes, DEFAULT_CHUNK_EVENTS)
            .unwrap();
        fs::write(&path, bytes).unwrap();

        let mut back = Vec::new();
        copy_events(&mut MmapSource::open(&path).unwrap(), &mut back).unwrap();
        assert_eq!(back, std_text, ".std → .rbt → .std must be byte-exact");
    }

    #[test]
    fn small_chunks_build_a_consistent_index() {
        let trace = sample();
        let path = write_sample("chunky.rbt", 4);
        let bin = BinTrace::open(&path).unwrap();
        assert_eq!(bin.event_count(), trace.len() as u64);
        assert_eq!(bin.chunk_events(), 4);
        assert_eq!(bin.chunks().len(), 3, "10 events at 4 per chunk");
        assert_eq!(bin.chunks()[2].events, 2);
        assert_eq!(bin.chunk_of(0), 0);
        assert_eq!(bin.chunk_of(3), 0);
        assert_eq!(bin.chunk_of(4), 1);
        assert_eq!(bin.chunk_of(9), 2);

        // Per-chunk readers cover exactly the chunk ranges, and their
        // concatenation equals the whole trace.
        let bin = Arc::new(bin);
        let mut streamed = Vec::new();
        for chunk in 0..bin.chunks().len() {
            let collected =
                collect_trace(&mut MmapSource::for_chunk(Arc::clone(&bin), chunk)).unwrap();
            streamed.extend_from_slice(collected.events());
        }
        assert_eq!(streamed.as_slice(), trace.events());

        // reset_to_chunk walks the same ranges through one source.
        let mut source = MmapSource::for_chunk(Arc::clone(&bin), 0);
        let mut replay = Vec::new();
        for chunk in 0..bin.chunks().len() {
            source.reset_to_chunk(chunk);
            while let Some(e) = source.next_event().unwrap() {
                replay.push(e);
            }
        }
        assert_eq!(replay.as_slice(), trace.events());
    }

    #[test]
    fn empty_traces_roundtrip() {
        let path = temp("empty.rbt");
        let mut bytes = Vec::new();
        let n = write_binary(&mut StdReader::new(&b""[..]), &mut bytes, 8).unwrap();
        assert_eq!(n, 0);
        fs::write(&path, bytes).unwrap();
        let mut source = MmapSource::open(&path).unwrap();
        assert_eq!(source.size_hint(), Some(0));
        assert!(source.next_event().unwrap().is_none());
        let mut batch = EventBatch::new();
        assert_eq!(source.next_batch(&mut batch).unwrap(), 0);
    }

    #[test]
    fn truncation_and_corruption_are_attributed() {
        let path = write_sample("corrupt.rbt", 4);
        let bytes = fs::read(&path).unwrap();

        // Chopping the tail invalidates the end magic.
        let cut = temp("cut.rbt");
        fs::write(&cut, &bytes[..bytes.len() - 5]).unwrap();
        assert!(matches!(
            BinTrace::open(&cut).unwrap_err(),
            BinfmtError::Corrupt { what } if what.contains("end magic")
        ));

        // Too short for even header + footer.
        fs::write(&cut, &bytes[..10]).unwrap();
        assert!(matches!(BinTrace::open(&cut).unwrap_err(), BinfmtError::Corrupt { .. }));

        // Wrong leading magic is NotBinary.
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        fs::write(&cut, &wrong).unwrap();
        assert!(matches!(BinTrace::open(&cut).unwrap_err(), BinfmtError::NotBinary));

        // Future version is rejected with the version number.
        let mut future = bytes.clone();
        future[8] = 9;
        fs::write(&cut, &future).unwrap();
        assert!(matches!(BinTrace::open(&cut).unwrap_err(), BinfmtError::Version(9)));

        // A bad op tag inside chunk 1 is attributed to its record and
        // chunk, with the decoded prefix preserved — mirroring the
        // StdReader line-number contract.
        let mut bad = bytes.clone();
        bad[HEADER_BYTES + 5 * EVENT_RECORD_BYTES] = 0xEE;
        fs::write(&cut, &bad).unwrap();
        let mut source = MmapSource::open(&cut).unwrap();
        let mut batch = EventBatch::new();
        let err = source.next_batch(&mut batch).unwrap_err();
        assert_eq!(batch.len(), 5, "decoded prefix stays in the batch");
        assert_eq!(format!("{err}"), "record 5 (chunk 1): unknown event op tag 0xee");
        match err {
            SourceError::Binary(BinfmtError::Record { chunk, record, error }) => {
                assert_eq!((chunk, record), (1, 5));
                assert_eq!(error, WireError::BadOpTag(0xEE));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Errors are fatal, as in StdReader.
        assert_eq!(source.next_batch(&mut batch).unwrap(), 0);
    }

    #[test]
    fn doctored_chunk_index_is_rejected() {
        let path = write_sample("index.rbt", 4);
        let bytes = fs::read(&path).unwrap();
        let index_offset = {
            let at = bytes.len() - FOOTER_BYTES;
            u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize
        };
        // Second entry's first_event broken: ranges stop being contiguous.
        let mut bad = bytes.clone();
        bad[index_offset + CHUNK_ENTRY_BYTES] ^= 0xFF;
        let cut = temp("index-bad.rbt");
        fs::write(&cut, &bad).unwrap();
        assert!(matches!(
            BinTrace::open(&cut).unwrap_err(),
            BinfmtError::Index { chunk: 1, what: "event range is not contiguous" }
        ));
    }

    #[test]
    fn any_source_sniffs_both_encodings() {
        let trace = sample();
        let bin_path = write_sample("any.rbt", DEFAULT_CHUNK_EVENTS);
        let std_path = temp("any.std");
        let mut text = Vec::new();
        copy_events(&mut trace.stream(), &mut text).unwrap();
        fs::write(&std_path, &text).unwrap();

        let mut bin = AnySource::open(&bin_path).unwrap();
        assert!(bin.is_binary());
        let mut std = AnySource::open(&std_path).unwrap();
        assert!(!std.is_binary());
        let a = collect_trace(&mut bin).unwrap();
        let b = collect_trace(&mut std).unwrap();
        assert_eq!(a.events(), b.events());
        assert_eq!(a.events(), trace.events());

        // Binary attribution names records and chunks; text names lines.
        assert_eq!(bin.position_of(EventId(0)).unwrap(), "record 0 (chunk 0)");
        assert!(std.position_of(EventId(trace.len() as u64 - 1)).unwrap().starts_with("line "));
    }

    #[test]
    fn mmap_backing_serves_linux_reads() {
        let path = write_sample("mapped.rbt", DEFAULT_CHUNK_EVENTS);
        let bin = BinTrace::open(&path).unwrap();
        assert!(cfg!(not(unix)) || bin.is_mapped(), "unix builds should map the file");
    }
}
