//! Execution-trace model for the AeroDrome atomicity checker.
//!
//! Implements the preliminaries of Section 2 of *Atomicity Checking in
//! Linear Time using Vector Clocks* (ASPLOS 2020): traces as sequences of
//! events `⟨t, op⟩` where `op` is one of `r(x)`, `w(x)`, `acq(ℓ)`,
//! `rel(ℓ)`, `fork(u)`, `join(u)`, `⊲` (begin) and `⊳` (end), together
//! with
//!
//! * interned, dense identifiers for threads, locks and variables
//!   ([`ids`]),
//! * a growable [`Trace`] container and ergonomic [`TraceBuilder`]
//!   ([`trace`]),
//! * well-formedness validation per the paper's assumptions, both batch
//!   ([`validate::validate`]) and as a streaming stage
//!   ([`validate::Validator`], [`stream::Validated`]),
//! * transaction segmentation, including nested and unary transactions
//!   ([`txn`]),
//! * the RAPID-style `.std` text format ([`parser`]), and the streaming
//!   event-source API it is built on ([`stream`]): constant-memory
//!   ingestion from readers, in-memory traces or generators,
//! * the `MetaInfo` statistics of Tables 1–2, columns 2–6 ([`stats`]),
//! * the paper's example traces ρ1–ρ4 ([`paper_traces`]).
//!
//! # Examples
//!
//! ```
//! use tracelog::{Op, TraceBuilder};
//!
//! let mut tb = TraceBuilder::new();
//! let (t1, t2) = (tb.thread("t1"), tb.thread("t2"));
//! let x = tb.var("x");
//! tb.begin(t1);
//! tb.write(t1, x);
//! tb.begin(t2);
//! tb.read(t2, x);
//! tb.end(t2);
//! tb.end(t1);
//! let trace = tb.finish();
//! assert_eq!(trace.len(), 6);
//! assert!(matches!(trace[1].op, Op::Write(v) if v == x));
//! ```

// `deny`, not `forbid`: the one place unsafe exists is the contained
// `binfmt::map` mmap FFI module, which opts back in explicitly.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod binfmt;
pub mod ids;
pub mod paper_traces;
pub mod parser;
pub mod stats;
pub mod stream;
pub mod trace;
pub mod txn;
pub mod validate;
pub mod wire;

pub use binfmt::{AnySource, BinTrace, BinfmtError, MmapSource};
pub use ids::{Interner, LockId, ThreadId, VarId};
pub use parser::{parse_trace, write_trace, ParseTraceError};
pub use stats::{MetaCollector, MetaInfo};
pub use stream::{
    EventBatch, EventSource, OwnedTraceSource, SourceError, SourceNames, StdReader, TraceSource,
};
pub use trace::{Event, EventId, Op, Trace, TraceBuilder};
pub use txn::{Transaction, TransactionId, Transactions};
pub use validate::{validate, Validator, ValiditySummary, WellFormedError};
