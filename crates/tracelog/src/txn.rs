//! Transaction segmentation.
//!
//! A transaction of thread `t` is a maximal subsequence of events of `t`
//! beginning at an *outermost* `⟨t,⊲⟩` and ending at the matching `⟨t,⊳⟩`
//! (Section 2). Nested begin/end pairs are absorbed into the outermost
//! transaction (Section 4.1.4), and events outside any transaction each
//! form their own *unary* transaction (the singleton atomic blocks of
//! Velodrome).
//!
//! The online checkers segment transactions on the fly; this module gives
//! the offline view used by statistics, tests and the Velodrome graph.

use std::fmt;

use crate::ids::ThreadId;
use crate::trace::{EventId, Op, Trace};

/// A dense transaction identifier, in order of transaction *start*.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TransactionId(pub u32);

impl TransactionId {
    /// The dense index backing this identifier.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TransactionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// One transaction: its thread, its boundary events and its extent.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transaction {
    /// The identifier of this transaction.
    pub id: TransactionId,
    /// The thread executing the transaction.
    pub thread: ThreadId,
    /// The outermost `⊲` event, or `None` for a unary transaction.
    pub begin: Option<EventId>,
    /// The matching outermost `⊳` event; `None` for unary transactions and
    /// for transactions still active at the end of the trace.
    pub end: Option<EventId>,
    /// Number of events belonging to the transaction (boundaries included).
    pub num_events: usize,
}

impl Transaction {
    /// Whether this is a unary (single-event, implicit) transaction.
    #[must_use]
    pub fn is_unary(&self) -> bool {
        self.begin.is_none()
    }

    /// Whether the transaction completed (`⊳` observed) within the trace.
    /// Unary transactions are complete by definition.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        self.is_unary() || self.end.is_some()
    }
}

/// The transaction decomposition of a trace.
///
/// # Examples
///
/// ```
/// use tracelog::{Transactions, TraceBuilder};
///
/// let mut tb = TraceBuilder::new();
/// let t = tb.thread("t1");
/// let x = tb.var("x");
/// tb.write(t, x);          // unary transaction
/// tb.begin(t);
/// tb.write(t, x);
/// tb.end(t);
/// let txns = Transactions::segment(&tb.finish());
/// assert_eq!(txns.len(), 2);
/// assert!(txns[0].is_unary());
/// assert_eq!(txns.non_unary_count(), 1);
/// ```
#[derive(Clone, Default, Debug)]
pub struct Transactions {
    txns: Vec<Transaction>,
    /// Transaction of each event, indexed by event offset.
    event_txn: Vec<TransactionId>,
}

impl Transactions {
    /// Segments `trace` into transactions.
    ///
    /// Unmatched `⊳` events (ill-formed traces) are treated as unary
    /// transactions rather than panicking; run [`crate::validate()`] first to
    /// reject such traces.
    #[must_use]
    pub fn segment(trace: &Trace) -> Self {
        let mut txns: Vec<Transaction> = Vec::new();
        let mut event_txn: Vec<TransactionId> = Vec::with_capacity(trace.len());
        // Per-thread (current outermost txn, nesting depth).
        let mut current: Vec<Option<TransactionId>> = vec![None; trace.num_threads()];
        let mut depth: Vec<usize> = vec![0; trace.num_threads()];

        for (i, e) in trace.iter().enumerate() {
            let ti = e.thread.index();
            let eid = EventId(i as u64);
            match e.op {
                Op::Begin => {
                    if depth[ti] == 0 {
                        let id = TransactionId(txns.len() as u32);
                        txns.push(Transaction {
                            id,
                            thread: e.thread,
                            begin: Some(eid),
                            end: None,
                            num_events: 1,
                        });
                        current[ti] = Some(id);
                        event_txn.push(id);
                    } else {
                        let id = current[ti].expect("depth > 0 implies current txn");
                        txns[id.index()].num_events += 1;
                        event_txn.push(id);
                    }
                    depth[ti] += 1;
                }
                Op::End => {
                    if depth[ti] == 0 {
                        // Ill-formed: treat as unary.
                        let id = TransactionId(txns.len() as u32);
                        txns.push(Transaction {
                            id,
                            thread: e.thread,
                            begin: None,
                            end: None,
                            num_events: 1,
                        });
                        event_txn.push(id);
                    } else {
                        let id = current[ti].expect("depth > 0 implies current txn");
                        txns[id.index()].num_events += 1;
                        event_txn.push(id);
                        depth[ti] -= 1;
                        if depth[ti] == 0 {
                            txns[id.index()].end = Some(eid);
                            current[ti] = None;
                        }
                    }
                }
                _ => {
                    if let Some(id) = current[ti] {
                        txns[id.index()].num_events += 1;
                        event_txn.push(id);
                    } else {
                        let id = TransactionId(txns.len() as u32);
                        txns.push(Transaction {
                            id,
                            thread: e.thread,
                            begin: None,
                            end: None,
                            num_events: 1,
                        });
                        event_txn.push(id);
                    }
                }
            }
        }

        Self { txns, event_txn }
    }

    /// Number of transactions (unary included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// Whether the trace had no events at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Number of non-unary (explicit `⊲…⊳`) transactions — the
    /// "Transactions" column of Tables 1 and 2.
    #[must_use]
    pub fn non_unary_count(&self) -> usize {
        self.txns.iter().filter(|t| !t.is_unary()).count()
    }

    /// The transaction containing event `e` (`txn(e)` in the paper).
    #[must_use]
    pub fn txn_of(&self, e: EventId) -> TransactionId {
        self.event_txn[e.index()]
    }

    /// Iterates over all transactions in start order.
    pub fn iter(&self) -> std::slice::Iter<'_, Transaction> {
        self.txns.iter()
    }
}

impl std::ops::Index<usize> for Transactions {
    type Output = Transaction;

    fn index(&self, i: usize) -> &Transaction {
        &self.txns[i]
    }
}

impl std::ops::Index<TransactionId> for Transactions {
    type Output = Transaction;

    fn index(&self, id: TransactionId) -> &Transaction {
        &self.txns[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    #[test]
    fn segments_simple_transactions() {
        // ρ1-like: three transactions in three threads.
        let mut tb = TraceBuilder::new();
        let (t1, t2) = (tb.thread("t1"), tb.thread("t2"));
        let x = tb.var("x");
        tb.begin(t1).write(t1, x);
        tb.begin(t2).read(t2, x).end(t2);
        tb.end(t1);
        let txns = Transactions::segment(&tb.finish());
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[0].thread, t1);
        assert_eq!(txns[0].begin, Some(EventId(0)));
        assert_eq!(txns[0].end, Some(EventId(5)));
        assert_eq!(txns[0].num_events, 3);
        assert_eq!(txns[1].thread, t2);
        assert_eq!(txns[1].num_events, 3);
        // txn(e) mapping: events 0,1,5 in T0; 2,3,4 in T1.
        assert_eq!(txns.txn_of(EventId(1)), TransactionId(0));
        assert_eq!(txns.txn_of(EventId(3)), TransactionId(1));
        assert_eq!(txns.txn_of(EventId(5)), TransactionId(0));
    }

    #[test]
    fn nested_blocks_fold_into_outermost() {
        let mut tb = TraceBuilder::new();
        let t = tb.thread("t1");
        let x = tb.var("x");
        tb.begin(t).begin(t).write(t, x).end(t).end(t);
        let txns = Transactions::segment(&tb.finish());
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].num_events, 5);
        assert_eq!(txns[0].begin, Some(EventId(0)));
        assert_eq!(txns[0].end, Some(EventId(4)));
        assert_eq!(txns.non_unary_count(), 1);
    }

    #[test]
    fn events_outside_transactions_are_unary() {
        let mut tb = TraceBuilder::new();
        let t = tb.thread("t1");
        let x = tb.var("x");
        tb.write(t, x).read(t, x);
        let txns = Transactions::segment(&tb.finish());
        assert_eq!(txns.len(), 2);
        assert!(txns[0].is_unary() && txns[1].is_unary());
        assert!(txns[0].is_completed());
        assert_eq!(txns.non_unary_count(), 0);
        assert_ne!(txns.txn_of(EventId(0)), txns.txn_of(EventId(1)));
    }

    #[test]
    fn active_transaction_has_no_end() {
        let mut tb = TraceBuilder::new();
        let t = tb.thread("t1");
        let x = tb.var("x");
        tb.begin(t).write(t, x);
        let txns = Transactions::segment(&tb.finish());
        assert_eq!(txns.len(), 1);
        assert!(!txns[0].is_completed());
        assert!(!txns[0].is_unary());
    }

    #[test]
    fn interleaved_threads_get_distinct_transactions() {
        let mut tb = TraceBuilder::new();
        let (t1, t2) = (tb.thread("t1"), tb.thread("t2"));
        let x = tb.var("x");
        tb.begin(t1).begin(t2).write(t1, x).write(t2, x).end(t2).end(t1);
        let txns = Transactions::segment(&tb.finish());
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[txns.txn_of(EventId(2))].thread, t1);
        assert_eq!(txns[txns.txn_of(EventId(3))].thread, t2);
    }

    #[test]
    fn unmatched_end_becomes_unary() {
        let mut tb = TraceBuilder::new();
        let t = tb.thread("t1");
        tb.end(t);
        let txns = Transactions::segment(&tb.finish());
        assert_eq!(txns.len(), 1);
        assert!(txns[0].is_unary());
    }
}
