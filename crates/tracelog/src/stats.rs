//! Trace statistics — the `MetaInfo` analysis of the Rapid artifact.
//!
//! Computes columns 2–6 of Tables 1 and 2 of the paper: number of events,
//! threads, locks, variables and transactions, plus a per-operation
//! breakdown used by the workload generators to match benchmark shapes.

use std::fmt;

use crate::stream::{EventSource, SourceError};
use crate::trace::{Op, Trace};
use crate::txn::Transactions;

/// Aggregate statistics of a trace.
///
/// # Examples
///
/// ```
/// use tracelog::{MetaInfo, TraceBuilder};
///
/// let mut tb = TraceBuilder::new();
/// let t = tb.thread("t1");
/// let x = tb.var("x");
/// tb.begin(t).write(t, x).read(t, x).end(t);
/// let info = MetaInfo::of(&tb.finish());
/// assert_eq!(info.events, 4);
/// assert_eq!(info.transactions, 1);
/// assert_eq!(info.writes, 1);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct MetaInfo {
    /// Total number of events (column 2).
    pub events: usize,
    /// Distinct threads (column 3).
    pub threads: usize,
    /// Distinct locks (column 4).
    pub locks: usize,
    /// Distinct memory locations (column 5).
    pub vars: usize,
    /// Non-unary transactions (column 6).
    pub transactions: usize,
    /// `r(x)` events.
    pub reads: usize,
    /// `w(x)` events.
    pub writes: usize,
    /// `acq(ℓ)` events.
    pub acquires: usize,
    /// `rel(ℓ)` events.
    pub releases: usize,
    /// `fork(u)` events.
    pub forks: usize,
    /// `join(u)` events.
    pub joins: usize,
    /// `⊲` events (inner ones of nested blocks included).
    pub begins: usize,
    /// `⊳` events (inner ones of nested blocks included).
    pub ends: usize,
}

impl MetaInfo {
    /// Computes the statistics of `trace` in one pass (plus transaction
    /// segmentation).
    #[must_use]
    pub fn of(trace: &Trace) -> Self {
        let mut info = Self {
            events: trace.len(),
            threads: trace.num_threads(),
            locks: trace.num_locks(),
            vars: trace.num_vars(),
            transactions: Transactions::segment(trace).non_unary_count(),
            ..Self::default()
        };
        for e in trace {
            match e.op {
                Op::Read(_) => info.reads += 1,
                Op::Write(_) => info.writes += 1,
                Op::Acquire(_) => info.acquires += 1,
                Op::Release(_) => info.releases += 1,
                Op::Fork(_) => info.forks += 1,
                Op::Join(_) => info.joins += 1,
                Op::Begin => info.begins += 1,
                Op::End => info.ends += 1,
            }
        }
        info
    }

    /// Computes the statistics of a streaming source in constant memory
    /// (name tables aside), without materialising a [`Trace`] —
    /// [`MetaCollector`] driven per event.
    ///
    /// Transactions are counted as outermost `⊲` events, which on
    /// well-formed traces equals the segmentation-based count of
    /// [`MetaInfo::of`] (property-tested in `tests/proptests.rs`).
    ///
    /// # Errors
    ///
    /// Propagates the first error of the source.
    pub fn collect<S: EventSource + ?Sized>(source: &mut S) -> Result<Self, SourceError> {
        Self::collect_batched(source, crate::stream::DEFAULT_BATCH_EVENTS)
    }

    /// [`MetaInfo::collect`] with an explicit ingest batch size (the
    /// `rapid --batch` knob). Events preceding a source failure are
    /// folded in before the error surfaces, exactly as per-event
    /// iteration would.
    ///
    /// # Errors
    ///
    /// Propagates the first error of the source.
    pub fn collect_batched<S: EventSource + ?Sized>(
        source: &mut S,
        batch_events: usize,
    ) -> Result<Self, SourceError> {
        let mut collector = MetaCollector::default();
        let mut batch = crate::stream::EventBatch::with_target(batch_events);
        loop {
            let refill = source.next_batch(&mut batch);
            for &event in batch.events() {
                collector.observe(event);
            }
            match refill {
                Err(e) => return Err(e),
                Ok(0) => break,
                Ok(_) => {}
            }
        }
        Ok(collector.finish(&source.names()))
    }

    /// Memory accesses (`reads + writes`).
    #[must_use]
    pub fn accesses(&self) -> usize {
        self.reads + self.writes
    }
}

/// The streaming state behind [`MetaInfo::collect`], exposed so callers
/// that already iterate events (or batches of them) can fold statistics
/// in without handing over the source.
///
/// # Examples
///
/// ```
/// use tracelog::{MetaCollector, TraceBuilder};
///
/// let mut tb = TraceBuilder::new();
/// let t = tb.thread("t1");
/// let x = tb.var("x");
/// tb.begin(t).write(t, x).end(t);
/// let trace = tb.finish();
/// let mut collector = MetaCollector::default();
/// for &e in &trace {
///     collector.observe(e);
/// }
/// let info = collector.finish(&trace.names());
/// assert_eq!((info.events, info.transactions), (3, 1));
/// ```
#[derive(Clone, Default, Debug)]
pub struct MetaCollector {
    info: MetaInfo,
    /// Per-thread nesting depth (outermost begins count as transactions).
    depth: Vec<usize>,
}

impl MetaCollector {
    /// Folds one event into the statistics.
    pub fn observe(&mut self, e: crate::Event) {
        let ti = e.thread.index();
        if self.depth.len() <= ti {
            self.depth.resize(ti + 1, 0);
        }
        let info = &mut self.info;
        info.events += 1;
        match e.op {
            Op::Read(_) => info.reads += 1,
            Op::Write(_) => info.writes += 1,
            Op::Acquire(_) => info.acquires += 1,
            Op::Release(_) => info.releases += 1,
            Op::Fork(_) => info.forks += 1,
            Op::Join(_) => info.joins += 1,
            Op::Begin => {
                info.begins += 1;
                if self.depth[ti] == 0 {
                    info.transactions += 1;
                }
                self.depth[ti] += 1;
            }
            Op::End => {
                info.ends += 1;
                self.depth[ti] = self.depth[ti].saturating_sub(1);
            }
        }
    }

    /// Finalises with the source's name tables.
    #[must_use]
    pub fn finish(mut self, names: &crate::stream::SourceNames<'_>) -> MetaInfo {
        self.info.threads = names.threads.len();
        self.info.locks = names.locks.len();
        self.info.vars = names.vars.len();
        self.info
    }
}

impl fmt::Display for MetaInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "events:       {}", self.events)?;
        writeln!(f, "threads:      {}", self.threads)?;
        writeln!(f, "locks:        {}", self.locks)?;
        writeln!(f, "variables:    {}", self.vars)?;
        writeln!(f, "transactions: {}", self.transactions)?;
        writeln!(
            f,
            "ops:          r={} w={} acq={} rel={} fork={} join={} begin={} end={}",
            self.reads,
            self.writes,
            self.acquires,
            self.releases,
            self.forks,
            self.joins,
            self.begins,
            self.ends
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    #[test]
    fn counts_every_operation_kind() {
        let mut tb = TraceBuilder::new();
        let (t1, t2) = (tb.thread("t1"), tb.thread("t2"));
        let l = tb.lock("m");
        let x = tb.var("x");
        tb.fork(t1, t2);
        tb.begin(t1).acquire(t1, l).write(t1, x).read(t1, x).release(t1, l).end(t1);
        tb.begin(t2).end(t2);
        tb.join(t1, t2);
        let info = MetaInfo::of(&tb.finish());
        assert_eq!(info.events, 10);
        assert_eq!(info.threads, 2);
        assert_eq!(info.locks, 1);
        assert_eq!(info.vars, 1);
        assert_eq!(info.transactions, 2);
        assert_eq!((info.reads, info.writes), (1, 1));
        assert_eq!((info.acquires, info.releases), (1, 1));
        assert_eq!((info.forks, info.joins), (1, 1));
        assert_eq!((info.begins, info.ends), (2, 2));
        assert_eq!(info.accesses(), 2);
    }

    #[test]
    fn streaming_collect_matches_batch_of() {
        let mut tb = TraceBuilder::new();
        let (t1, t2) = (tb.thread("t1"), tb.thread("t2"));
        let l = tb.lock("m");
        let x = tb.var("x");
        tb.fork(t1, t2);
        // Nested begin/end: only the outermost pair is a transaction.
        tb.begin(t1).begin(t1).acquire(t1, l).write(t1, x).release(t1, l).end(t1).end(t1);
        tb.begin(t2).read(t2, x).end(t2);
        tb.join(t1, t2);
        let trace = tb.finish();
        let streamed = MetaInfo::collect(&mut trace.stream()).unwrap();
        assert_eq!(streamed, MetaInfo::of(&trace));
        assert_eq!(streamed.transactions, 2);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let info = MetaInfo::of(&TraceBuilder::new().finish());
        assert_eq!(info, MetaInfo::default());
    }

    #[test]
    fn display_mentions_every_count() {
        let mut tb = TraceBuilder::new();
        let t = tb.thread("t1");
        tb.begin(t).end(t);
        let s = MetaInfo::of(&tb.finish()).to_string();
        assert!(s.contains("events:       2"));
        assert!(s.contains("transactions: 1"));
    }
}
