//! Streaming event sources — the constant-memory ingestion API.
//!
//! The paper's headline claim is *online* checking: AeroDrome touches each
//! event once, in constant per-event work. This module makes the front
//! half of the tool match: an [`EventSource`] yields events one at a time
//! without ever materialising the whole trace, so a multi-gigabyte `.std`
//! log (or an arbitrarily large generated workload) can flow straight
//! into a checker in constant memory.
//!
//! Implementations provided here:
//!
//! * [`StdReader`] — an incremental `.std` parser over any
//!   [`io::BufRead`]; [`crate::parse_trace`] is a thin collect over it,
//!   so there is exactly one parser.
//! * [`TraceSource`] — an adapter replaying an in-memory [`Trace`]
//!   (see [`Trace::stream`]).
//! * [`Validated`] — the Section 2 well-formedness validator as an online
//!   filter stage wrapping any inner source.
//!
//! Generator-backed sources live in the `workloads` crate; the umbrella
//! crate's `pipeline` module composes source → validator → checker.
//!
//! # Batches
//!
//! Pulling one event per call is the natural unit for the *checkers*
//! (they are online by definition), but it is the wrong unit for
//! everything around them: dynamic dispatch, wall-clock budget checks
//! and — above all — cross-thread hand-off cost per *call*, so the
//! parallel runtime would drown in synchronisation. [`EventSource::
//! next_batch`] amortises that per-call cost over a reusable,
//! arena-backed [`EventBatch`] (default [`DEFAULT_BATCH_EVENTS`] ≈ 4096
//! events): the sources in this crate and the `workloads` generators
//! fill batches natively, per-event [`EventSource::next_event`] remains
//! the thin adapter for online consumers, and the two iteration modes
//! yield byte-identical event sequences and identical errors.
//!
//! # Examples
//!
//! ```
//! use tracelog::stream::{EventSource, StdReader};
//!
//! let log = "t1|begin|0\nt1|w(x)|1\nt1|end|2\n";
//! let mut source = StdReader::new(log.as_bytes());
//! let mut n = 0;
//! while let Some(event) = source.next_event()? {
//!     let _ = source.names().display_event(&event);
//!     n += 1;
//! }
//! assert_eq!(n, 3);
//! # Ok::<(), tracelog::stream::SourceError>(())
//! ```

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::ids::{Interner, LockId, ThreadId, VarId};
use crate::parser::{parse_event_line, ParseTraceError};
use crate::trace::{Event, Op, Trace};
use crate::validate::{Validator, ValiditySummary, WellFormedError};

/// An error while pulling events out of a source.
#[derive(Debug)]
pub enum SourceError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A line of the `.std` format did not parse.
    Parse(ParseTraceError),
    /// A [`Validated`] stage rejected an event as ill-formed.
    Malformed(WellFormedError),
    /// A `.rbt` binary trace was structurally invalid
    /// (see [`crate::binfmt`]).
    Binary(crate::binfmt::BinfmtError),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "{e}"),
            Self::Parse(e) => write!(f, "{e}"),
            Self::Malformed(e) => write!(f, "not well-formed: {e}"),
            Self::Binary(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Parse(e) => Some(e),
            Self::Malformed(e) => Some(e),
            Self::Binary(e) => Some(e),
        }
    }
}

impl From<io::Error> for SourceError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<ParseTraceError> for SourceError {
    fn from(e: ParseTraceError) -> Self {
        Self::Parse(e)
    }
}

impl From<WellFormedError> for SourceError {
    fn from(e: WellFormedError) -> Self {
        Self::Malformed(e)
    }
}

impl From<crate::binfmt::BinfmtError> for SourceError {
    fn from(e: crate::binfmt::BinfmtError) -> Self {
        Self::Binary(e)
    }
}

/// Borrowed name tables of a source: everything needed to render ids
/// (threads, locks, variables) back to the original identifiers.
///
/// The tables grow as the source runs — a name is guaranteed present once
/// an event mentioning it has been yielded.
#[derive(Clone, Copy, Debug)]
pub struct SourceNames<'a> {
    /// Thread name table.
    pub threads: &'a Interner,
    /// Lock name table.
    pub locks: &'a Interner,
    /// Variable name table.
    pub vars: &'a Interner,
}

impl SourceNames<'_> {
    /// Human-readable name of a thread.
    #[must_use]
    pub fn thread_name(&self, t: ThreadId) -> &str {
        self.threads.name(t.index())
    }

    /// Human-readable name of a lock.
    #[must_use]
    pub fn lock_name(&self, l: LockId) -> &str {
        self.locks.name(l.index())
    }

    /// Human-readable name of a variable.
    #[must_use]
    pub fn var_name(&self, x: VarId) -> &str {
        self.vars.name(x.index())
    }

    /// Renders an event with original names, e.g. `⟨t1, w(x)⟩`.
    #[must_use]
    pub fn display_event(&self, e: &Event) -> String {
        let op = match e.op {
            Op::Read(x) => format!("r({})", self.var_name(x)),
            Op::Write(x) => format!("w({})", self.var_name(x)),
            Op::Acquire(l) => format!("acq({})", self.lock_name(l)),
            Op::Release(l) => format!("rel({})", self.lock_name(l)),
            Op::Fork(t) => format!("fork({})", self.thread_name(t)),
            Op::Join(t) => format!("join({})", self.thread_name(t)),
            Op::Begin => "▷".to_owned(),
            Op::End => "◁".to_owned(),
        };
        format!("⟨{}, {}⟩", self.thread_name(e.thread), op)
    }
}

/// Default target capacity of an [`EventBatch`] — large enough to
/// amortise per-batch costs (dynamic dispatch, channel hand-off) into
/// noise, small enough that a batch of `Event`s stays cache-friendly.
pub const DEFAULT_BATCH_EVENTS: usize = 4096;

/// A reusable, arena-backed batch of events.
///
/// The backing `Vec<Event>` is the arena: [`EventBatch::clear`] keeps
/// its capacity, so a batch refilled in a loop — or recycled through the
/// parallel runtime's channels — allocates exactly once and is reused
/// for the rest of the run. The *target* is the fill level
/// [`EventSource::next_batch`] aims for; it is a soft cap on refills,
/// not a hard limit on [`EventBatch::push`].
///
/// # Examples
///
/// ```
/// use tracelog::stream::{EventBatch, EventSource, StdReader};
///
/// let log = "t1|begin|0\nt1|w(x)|1\nt1|end|2\n";
/// let mut source = StdReader::new(log.as_bytes());
/// let mut batch = EventBatch::with_target(2);
/// assert_eq!(source.next_batch(&mut batch)?, 2);
/// assert_eq!(source.next_batch(&mut batch)?, 1);
/// assert_eq!(source.next_batch(&mut batch)?, 0); // exhausted
/// # Ok::<(), tracelog::stream::SourceError>(())
/// ```
#[derive(Clone, Debug)]
pub struct EventBatch {
    events: Vec<Event>,
    target: usize,
}

impl Default for EventBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl EventBatch {
    /// An empty batch with the default target ([`DEFAULT_BATCH_EVENTS`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_target(DEFAULT_BATCH_EVENTS)
    }

    /// An empty batch aiming for `target` events per refill.
    ///
    /// # Panics
    ///
    /// Panics if `target == 0` (a refill could never make progress).
    #[must_use]
    pub fn with_target(target: usize) -> Self {
        assert!(target > 0, "batch target must be positive");
        Self { events: Vec::with_capacity(target), target }
    }

    /// The fill level refills aim for.
    #[must_use]
    pub fn target(&self) -> usize {
        self.target
    }

    /// Empties the batch, keeping the arena's capacity.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Appends one event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Appends a run of events.
    pub fn extend_from_slice(&mut self, events: &[Event]) {
        self.events.extend_from_slice(events);
    }

    /// Shortens the batch to its first `len` events.
    pub fn truncate(&mut self, len: usize) {
        self.events.truncate(len);
    }

    /// Whether the batch has reached its target fill level.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.events.len() >= self.target
    }

    /// Number of events currently in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the batch holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The batched events, in trace order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

impl<'a> IntoIterator for &'a EventBatch {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// A streaming producer of trace events.
///
/// The online counterpart of [`Trace`]: events arrive one at a time in
/// trace order, identifiers are interned densely on first occurrence, and
/// the name tables are available at any point through [`names`]
/// (covering at least every event yielded so far).
///
/// Consumers that care about hand-off cost (the parallel runtime, budget
/// drivers) should pull [`next_batch`] instead of per-event
/// [`next_event`]; the two modes yield identical event sequences and
/// identical errors, batching only changes the call granularity.
///
/// [`names`]: EventSource::names
/// [`next_batch`]: EventSource::next_batch
/// [`next_event`]: EventSource::next_event
pub trait EventSource {
    /// Pulls the next event, or `None` at the end of the trace.
    ///
    /// # Errors
    ///
    /// Returns a [`SourceError`] if the underlying reader fails, a line
    /// does not parse, or a validating stage rejects the event.
    fn next_event(&mut self) -> Result<Option<Event>, SourceError>;

    /// Clears `batch` and refills it up to its target, returning the
    /// number of events appended; `Ok(0)` means the source is exhausted.
    ///
    /// The provided implementation is the thin adapter over
    /// [`next_event`]; the sources of this crate and the workload
    /// generators override it to fill the arena natively (one virtual
    /// call and one channel hand-off per ~4096 events instead of per
    /// event).
    ///
    /// [`next_event`]: EventSource::next_event
    ///
    /// # Errors
    ///
    /// Propagates the first [`SourceError`]. On error, `batch` holds the
    /// valid events read *before* the failure (possibly none): a caller
    /// that wants per-event-identical semantics processes them first and
    /// surfaces the error after.
    fn next_batch(&mut self, batch: &mut EventBatch) -> Result<usize, SourceError> {
        batch.clear();
        while !batch.is_full() {
            match self.next_event()? {
                Some(event) => batch.push(event),
                None => break,
            }
        }
        Ok(batch.len())
    }

    /// The name tables accumulated so far.
    fn names(&self) -> SourceNames<'_>;

    /// Approximate number of events this source expects to yield in
    /// total, when known — a pre-allocation hint, not a contract.
    fn size_hint(&self) -> Option<u64> {
        None
    }

    /// Human-readable position of a recently yielded event in the
    /// source's own coordinates — `line N` for the text parser,
    /// `record N (chunk C)` for the binary reader — used by consumers
    /// that batch ahead of the checkers to attribute an event rejected
    /// after the source already read past it. `None` when the source has
    /// no positional notion (in-memory replays, generators) or the event
    /// is outside the attribution window.
    fn position_of(&self, event: crate::EventId) -> Option<String> {
        let _ = event;
        None
    }
}

impl<S: EventSource + ?Sized> EventSource for &mut S {
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        (**self).next_event()
    }

    fn next_batch(&mut self, batch: &mut EventBatch) -> Result<usize, SourceError> {
        (**self).next_batch(batch)
    }

    fn names(&self) -> SourceNames<'_> {
        (**self).names()
    }

    fn size_hint(&self) -> Option<u64> {
        (**self).size_hint()
    }

    fn position_of(&self, event: crate::EventId) -> Option<String> {
        (**self).position_of(event)
    }
}

impl<S: EventSource + ?Sized> EventSource for Box<S> {
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        (**self).next_event()
    }

    fn next_batch(&mut self, batch: &mut EventBatch) -> Result<usize, SourceError> {
        (**self).next_batch(batch)
    }

    fn names(&self) -> SourceNames<'_> {
        (**self).names()
    }

    fn size_hint(&self) -> Option<u64> {
        (**self).size_hint()
    }

    fn position_of(&self, event: crate::EventId) -> Option<String> {
        (**self).position_of(event)
    }
}

/// Incremental `.std` parser over any buffered reader.
///
/// Reads one line per event, interning names as they first occur; memory
/// use is bounded by the name tables plus a single line buffer, never by
/// the trace length. Errors carry the 1-based line number and are
/// **fatal**: after one, the reader reports end-of-stream rather than
/// resuming past the malformed line.
///
/// # Examples
///
/// ```
/// use tracelog::stream::{EventSource, StdReader};
///
/// let mut r = StdReader::new("main|fork(w)|0\nw|begin|1\n".as_bytes());
/// while let Some(e) = r.next_event()? { let _ = e; }
/// assert_eq!(r.names().threads.len(), 2);
/// assert_eq!(r.line(), 2);
/// # Ok::<(), tracelog::stream::SourceError>(())
/// ```
#[derive(Debug)]
pub struct StdReader<R> {
    reader: R,
    threads: Interner,
    locks: Interner,
    vars: Interner,
    line: usize,
    buf: String,
    done: bool,
    /// Events yielded so far (either iteration mode).
    events: u64,
    /// Line numbers of the most recent run of yielded events (the last
    /// batch, or the last single event) — backs [`StdReader::line_of`].
    recent_lines: Vec<usize>,
}

impl<R: BufRead> StdReader<R> {
    /// Wraps a buffered reader positioned at the start of a `.std` log.
    #[must_use]
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            threads: Interner::new(),
            locks: Interner::new(),
            vars: Interner::new(),
            line: 0,
            buf: String::new(),
            done: false,
            events: 0,
            recent_lines: Vec::new(),
        }
    }

    /// One-based number of the last line read. In per-event iteration
    /// this is the line of the most recently yielded event; after a
    /// [`EventSource::next_batch`] refill it is the last line of the
    /// batch — use [`StdReader::line_of`] to attribute an event inside
    /// the batch.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }

    /// The 1-based line a recently yielded event was parsed from, when
    /// it is still in the attribution window (the most recent batch, or
    /// the most recent per-event yield). This is how a consumer that
    /// batches ahead — the pipeline validator, the parallel runtime —
    /// reports the *offending line* of an event rejected after the
    /// reader already read past it.
    #[must_use]
    pub fn line_of(&self, event: crate::EventId) -> Option<usize> {
        let index = event.index() as u64;
        let start = self.events - self.recent_lines.len() as u64;
        index
            .checked_sub(start)
            .filter(|_| index < self.events)
            .map(|offset| self.recent_lines[usize::try_from(offset).expect("batch-sized offset")])
    }

    /// Consumes the reader, yielding its `(threads, locks, vars)` name
    /// tables by value — the zero-copy alternative to cloning through
    /// [`EventSource::names`] once the stream is drained (this is how
    /// [`crate::parse_trace`] avoids duplicating the tables).
    #[must_use]
    pub fn into_names(self) -> (Interner, Interner, Interner) {
        (self.threads, self.locks, self.vars)
    }

    /// Session reset onto a new input: the parser restarts from line 1
    /// with empty name tables while the line buffer, the attribution
    /// window and the interner capacity stay warm. This is how a resident
    /// worker reads an unbounded stream of trace files through one
    /// reader session instead of constructing a parser per trace.
    pub fn reset(&mut self, reader: R) {
        self.reader = reader;
        self.threads.clear();
        self.locks.clear();
        self.vars.clear();
        self.line = 0;
        self.done = false;
        self.events = 0;
        self.recent_lines.clear();
    }
}

impl<R: BufRead> StdReader<R> {
    /// Reads and parses the next event-bearing line, skipping blanks and
    /// comments. `Ok(None)` at end of input; errors are **fatal** (the
    /// stream has lost alignment, so resuming would silently drop the
    /// malformed event).
    #[inline]
    fn read_one(&mut self) -> Result<Option<Event>, SourceError> {
        loop {
            self.buf.clear();
            if self.reader.read_line(&mut self.buf)? == 0 {
                self.done = true;
                return Ok(None);
            }
            self.line += 1;
            let line = self.buf.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match parse_event_line(
                line,
                self.line,
                &mut self.threads,
                &mut self.locks,
                &mut self.vars,
            ) {
                Ok(event) => {
                    self.events += 1;
                    self.recent_lines.push(self.line);
                    return Ok(Some(event));
                }
                Err(e) => {
                    self.done = true;
                    return Err(e.into());
                }
            }
        }
    }
}

impl<R: BufRead> EventSource for StdReader<R> {
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        if self.done {
            return Ok(None);
        }
        self.recent_lines.clear();
        self.read_one()
    }

    /// Native batch parse: one monomorphic line loop per refill, so a
    /// `&mut dyn EventSource` consumer pays one virtual call per batch
    /// rather than per line. A parse error surfaces on the call that
    /// hits it, with the already-parsed prefix left in `batch`.
    fn next_batch(&mut self, batch: &mut EventBatch) -> Result<usize, SourceError> {
        batch.clear();
        if self.done {
            return Ok(0);
        }
        self.recent_lines.clear();
        while !batch.is_full() {
            match self.read_one()? {
                Some(event) => batch.push(event),
                None => break,
            }
        }
        Ok(batch.len())
    }

    fn names(&self) -> SourceNames<'_> {
        SourceNames { threads: &self.threads, locks: &self.locks, vars: &self.vars }
    }

    /// Text positions are 1-based source lines: [`StdReader::line_of`]
    /// inside the attribution window, the last line read otherwise.
    fn position_of(&self, event: crate::EventId) -> Option<String> {
        Some(format!("line {}", self.line_of(event).unwrap_or(self.line)))
    }
}

/// Replays an in-memory [`Trace`] as a stream (see [`Trace::stream`]).
#[derive(Clone, Debug)]
pub struct TraceSource<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl<'a> TraceSource<'a> {
    /// Creates a source replaying `trace` from the beginning.
    #[must_use]
    pub fn new(trace: &'a Trace) -> Self {
        Self { trace, pos: 0 }
    }
}

impl EventSource for TraceSource<'_> {
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        let event = self.trace.events().get(self.pos).copied();
        self.pos += usize::from(event.is_some());
        Ok(event)
    }

    /// Native batch replay: one `memcpy` of the next chunk.
    fn next_batch(&mut self, batch: &mut EventBatch) -> Result<usize, SourceError> {
        batch.clear();
        let events = self.trace.events();
        let n = batch.target().min(events.len() - self.pos);
        batch.extend_from_slice(&events[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }

    fn names(&self) -> SourceNames<'_> {
        self.trace.names()
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.trace.len() as u64)
    }
}

/// Replays an owned [`Trace`] as a stream (see [`Trace::into_stream`]).
///
/// The `'static` counterpart of [`TraceSource`]: generated traces (the
/// scenario engine's schedules, fuzzing mutants) can be handed to
/// consumers that require `Box<dyn EventSource>` without keeping the
/// trace alive elsewhere.
#[derive(Clone, Debug)]
pub struct OwnedTraceSource {
    trace: Trace,
    pos: usize,
}

impl OwnedTraceSource {
    /// Creates a source replaying `trace` from the beginning.
    #[must_use]
    pub fn new(trace: Trace) -> Self {
        Self { trace, pos: 0 }
    }

    /// The trace being replayed.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Rewinds to the beginning, making the source replayable.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }

    /// Releases the trace.
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl EventSource for OwnedTraceSource {
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        let event = self.trace.events().get(self.pos).copied();
        self.pos += usize::from(event.is_some());
        Ok(event)
    }

    /// Native batch replay: one `memcpy` of the next chunk.
    fn next_batch(&mut self, batch: &mut EventBatch) -> Result<usize, SourceError> {
        batch.clear();
        let events = self.trace.events();
        let n = batch.target().min(events.len() - self.pos);
        batch.extend_from_slice(&events[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }

    fn names(&self) -> SourceNames<'_> {
        self.trace.names()
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.trace.len() as u64)
    }
}

impl Trace {
    /// Streams this trace's events through the [`EventSource`] interface.
    #[must_use]
    pub fn stream(&self) -> TraceSource<'_> {
        TraceSource::new(self)
    }

    /// Converts this trace into a self-contained [`EventSource`] (the
    /// owning form of [`Trace::stream`], for `'static` consumers).
    #[must_use]
    pub fn into_stream(self) -> OwnedTraceSource {
        OwnedTraceSource::new(self)
    }

    /// The trace's name tables as [`SourceNames`].
    #[must_use]
    pub fn names(&self) -> SourceNames<'_> {
        SourceNames { threads: &self.threads, locks: &self.locks, vars: &self.vars }
    }
}

/// An online well-formedness filter: passes events through unchanged,
/// failing with [`SourceError::Malformed`] at the first event violating
/// the Section 2 assumptions (the streaming form of [`crate::validate()`]).
#[derive(Debug)]
pub struct Validated<S> {
    inner: S,
    validator: Validator,
    /// Latched after the first ill-formed event: the validator's state
    /// no longer describes the stream, and in batch mode the inner
    /// source has been consumed past the failure, so resuming would
    /// silently drop events. Errors are fatal, as in [`StdReader`].
    done: bool,
}

impl<S: EventSource> Validated<S> {
    /// Wraps `inner` with a fresh validator.
    #[must_use]
    pub fn new(inner: S) -> Self {
        Self { inner, validator: Validator::new(), done: false }
    }

    /// The residual open-transaction / held-lock state observed so far.
    #[must_use]
    pub fn summary(&self) -> ValiditySummary {
        self.validator.summary()
    }

    /// The wrapped validator.
    #[must_use]
    pub fn validator(&self) -> &Validator {
        &self.validator
    }

    /// Unwraps the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Session reset: clears the validator state and the fatal-error
    /// latch so the stage can validate another input. The caller is
    /// responsible for having reset (or replaced) the inner source to a
    /// fresh input first — e.g. via [`StdReader::reset`].
    pub fn reset(&mut self) {
        self.validator.reset();
        self.done = false;
    }
}

impl<S: EventSource> EventSource for Validated<S> {
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        if self.done {
            return Ok(None);
        }
        match self.inner.next_event()? {
            Some(event) => {
                if let Err(e) = self.validator.observe(event) {
                    self.done = true;
                    return Err(e.into());
                }
                Ok(Some(event))
            }
            None => Ok(None),
        }
    }

    /// Native batch validation: pulls one inner batch, then validates it
    /// in a single pass. An ill-formed event truncates the batch to the
    /// well-formed prefix and surfaces as [`SourceError::Malformed`] —
    /// exactly the events per-event iteration would have yielded first.
    /// The error is fatal: the inner source was consumed past the
    /// failure, so resuming would drop the rest of the failing batch;
    /// later calls report end-of-stream instead.
    fn next_batch(&mut self, batch: &mut EventBatch) -> Result<usize, SourceError> {
        if self.done {
            batch.clear();
            return Ok(0);
        }
        let inner = self.inner.next_batch(batch);
        for (i, &event) in batch.events().iter().enumerate() {
            if let Err(e) = self.validator.observe(event) {
                self.done = true;
                batch.truncate(i);
                return Err(e.into());
            }
        }
        inner
    }

    fn names(&self) -> SourceNames<'_> {
        self.inner.names()
    }

    fn size_hint(&self) -> Option<u64> {
        self.inner.size_hint()
    }

    fn position_of(&self, event: crate::EventId) -> Option<String> {
        self.inner.position_of(event)
    }
}

/// Drains a source into an in-memory [`Trace`].
///
/// This is the bridge from the streaming world back to the batch one.
/// The name tables are **cloned** out of the source (the trait only
/// hands out borrows); sources that can be consumed — [`StdReader`] via
/// [`StdReader::into_names`], the workloads generator — pair a manual
/// drain with [`Trace::from_parts`] instead to move the tables.
///
/// # Errors
///
/// Propagates the first [`SourceError`] of the source.
pub fn collect_trace<S: EventSource + ?Sized>(source: &mut S) -> Result<Trace, SourceError> {
    let mut events = Vec::new();
    if let Some(n) = source.size_hint() {
        events.reserve(usize::try_from(n).unwrap_or(0));
    }
    while let Some(event) = source.next_event()? {
        events.push(event);
    }
    let names = source.names();
    Ok(Trace {
        events,
        threads: names.threads.clone(),
        locks: names.locks.clone(),
        vars: names.vars.clone(),
    })
}

/// Streams a source to a writer in the `.std` text format, one event per
/// line with the event's trace offset as the `<loc>` field; returns the
/// number of events written. [`crate::write_trace`] is a thin wrapper, so
/// there is exactly one serialiser.
///
/// # Errors
///
/// Propagates source errors and write failures.
pub fn copy_events<S, W>(source: &mut S, out: &mut W) -> Result<u64, SourceError>
where
    S: EventSource + ?Sized,
    W: Write,
{
    let mut i = 0u64;
    while let Some(e) = source.next_event()? {
        let names = source.names();
        let t = names.thread_name(e.thread);
        match e.op {
            Op::Read(x) => writeln!(out, "{t}|r({})|{i}", names.var_name(x))?,
            Op::Write(x) => writeln!(out, "{t}|w({})|{i}", names.var_name(x))?,
            Op::Acquire(l) => writeln!(out, "{t}|acq({})|{i}", names.lock_name(l))?,
            Op::Release(l) => writeln!(out, "{t}|rel({})|{i}", names.lock_name(l))?,
            Op::Fork(u) => writeln!(out, "{t}|fork({})|{i}", names.thread_name(u))?,
            Op::Join(u) => writeln!(out, "{t}|join({})|{i}", names.thread_name(u))?,
            Op::Begin => writeln!(out, "{t}|begin|{i}")?,
            Op::End => writeln!(out, "{t}|end|{i}")?,
        }
        i += 1;
    }
    out.flush()?;
    Ok(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_trace, write_trace, ParseErrorKind};
    use crate::trace::TraceBuilder;

    fn sample() -> Trace {
        let mut tb = TraceBuilder::new();
        let (t1, t2) = (tb.thread("t1"), tb.thread("t2"));
        let l = tb.lock("m");
        let x = tb.var("x");
        tb.fork(t1, t2)
            .begin(t1)
            .acquire(t1, l)
            .write(t1, x)
            .release(t1, l)
            .end(t1)
            .begin(t2)
            .read(t2, x)
            .end(t2)
            .join(t1, t2);
        tb.finish()
    }

    #[test]
    fn std_reader_yields_same_events_as_batch_parser() {
        let text = write_trace(&sample());
        let batch = parse_trace(&text).unwrap();
        let mut reader = StdReader::new(text.as_bytes());
        let mut events = Vec::new();
        while let Some(e) = reader.next_event().unwrap() {
            events.push(e);
        }
        assert_eq!(events.as_slice(), batch.events());
        assert_eq!(reader.names().threads, batch.thread_names());
        assert_eq!(reader.names().locks, batch.lock_names());
        assert_eq!(reader.names().vars, batch.var_names());
    }

    #[test]
    fn std_reader_reports_line_numbers() {
        let mut reader = StdReader::new("# header\n\nt1|begin|0\nt1|bogus|1\n".as_bytes());
        assert!(reader.next_event().unwrap().is_some());
        assert_eq!(reader.line(), 3);
        let err = reader.next_event().unwrap_err();
        match err {
            SourceError::Parse(p) => {
                assert_eq!(p.line, 4);
                assert!(matches!(p.kind, ParseErrorKind::UnknownOp(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(reader.line(), 4);
    }

    #[test]
    fn trace_source_roundtrips_through_collect() {
        let trace = sample();
        let back = collect_trace(&mut trace.stream()).unwrap();
        assert_eq!(back.events(), trace.events());
        assert_eq!(back.num_threads(), trace.num_threads());
        assert_eq!(trace.stream().size_hint(), Some(trace.len() as u64));
    }

    #[test]
    fn copy_events_matches_write_trace() {
        let trace = sample();
        let mut buf = Vec::new();
        let n = copy_events(&mut trace.stream(), &mut buf).unwrap();
        assert_eq!(n, trace.len() as u64);
        assert_eq!(String::from_utf8(buf).unwrap(), write_trace(&trace));
    }

    #[test]
    fn validated_passes_well_formed_and_rejects_ill_formed() {
        let trace = sample();
        let mut ok = Validated::new(trace.stream());
        while let Some(e) = ok.next_event().unwrap() {
            let _ = e;
        }
        assert!(ok.summary().is_closed());

        let mut v = Validated::new(StdReader::new("t1|rel(m)|0\n".as_bytes()));
        match v.next_event() {
            Err(SourceError::Malformed(WellFormedError::ReleaseOfUnheldLock { .. })) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn source_names_render_events() {
        let trace = sample();
        let names = trace.names();
        assert_eq!(names.display_event(&trace[3]), trace.display_event(&trace[3]));
        assert_eq!(names.thread_name(trace[0].thread), "t1");
    }

    #[test]
    fn next_batch_equals_per_event_iteration() {
        let text = write_trace(&sample());
        for target in [1, 2, 3, 64] {
            let mut per_event = StdReader::new(text.as_bytes());
            let mut batched = StdReader::new(text.as_bytes());
            let mut batch = EventBatch::with_target(target);
            let mut streamed = Vec::new();
            while batched.next_batch(&mut batch).unwrap() > 0 {
                streamed.extend_from_slice(batch.events());
            }
            let mut events = Vec::new();
            while let Some(e) = per_event.next_event().unwrap() {
                events.push(e);
            }
            assert_eq!(streamed, events, "target {target}");
            assert_eq!(batched.line(), per_event.line());
        }
    }

    #[test]
    fn next_batch_surfaces_parse_errors_with_the_prefix() {
        let log = "t1|begin|0\nt1|w(x)|1\nt1|bogus|2\nt1|end|3\n";
        let mut reader = StdReader::new(log.as_bytes());
        let mut batch = EventBatch::new();
        let err = reader.next_batch(&mut batch).unwrap_err();
        assert_eq!(batch.len(), 2, "the parsed prefix stays in the batch");
        match err {
            SourceError::Parse(p) => assert_eq!(p.line, 3),
            other => panic!("unexpected {other:?}"),
        }
        // Errors are fatal, exactly as in per-event mode.
        assert_eq!(reader.next_batch(&mut batch).unwrap(), 0);
    }

    #[test]
    fn trace_source_batches_in_chunks() {
        let trace = sample();
        let mut source = trace.stream();
        let mut batch = EventBatch::with_target(4);
        let mut streamed = Vec::new();
        loop {
            let n = source.next_batch(&mut batch).unwrap();
            assert!(n <= 4);
            if n == 0 {
                break;
            }
            streamed.extend_from_slice(batch.events());
        }
        assert_eq!(streamed.as_slice(), trace.events());
    }

    #[test]
    fn validated_batch_truncates_to_the_well_formed_prefix() {
        let log = "t1|begin|0\nt1|w(x)|1\nt1|rel(m)|2\n";
        let mut v = Validated::new(StdReader::new(log.as_bytes()));
        let mut batch = EventBatch::new();
        let err = v.next_batch(&mut batch).unwrap_err();
        assert!(matches!(err, SourceError::Malformed(WellFormedError::ReleaseOfUnheldLock { .. })));
        assert_eq!(batch.len(), 2, "well-formed prefix preserved");
        // The error latches: the inner source was consumed past the
        // failure, so resuming would silently skip events.
        assert_eq!(v.next_batch(&mut batch).unwrap(), 0);
        assert!(v.next_event().unwrap().is_none());
    }

    #[test]
    fn batch_arena_is_reused_across_refills() {
        let trace = sample();
        let mut batch = EventBatch::with_target(3);
        let mut source = trace.stream();
        source.next_batch(&mut batch).unwrap();
        let cap = batch.events.capacity();
        let ptr = batch.events.as_ptr();
        while source.next_batch(&mut batch).unwrap() > 0 {}
        assert_eq!(batch.events.capacity(), cap);
        assert_eq!(batch.events.as_ptr(), ptr, "refills must reuse the arena");
    }

    #[test]
    #[should_panic(expected = "batch target must be positive")]
    fn zero_target_batches_are_rejected() {
        let _ = EventBatch::with_target(0);
    }

    #[test]
    fn mut_ref_sources_forward() {
        let trace = sample();
        let mut s = trace.stream();
        let via_ref: &mut TraceSource<'_> = &mut s;
        assert_eq!(via_ref.size_hint(), Some(trace.len() as u64));
        let collected = collect_trace(&mut &mut s).unwrap();
        assert_eq!(collected.len(), trace.len());
    }

    #[test]
    fn owned_source_matches_borrowed_and_rewinds() {
        let trace = sample();
        let borrowed = collect_trace(&mut trace.stream()).unwrap();
        // The owned source is 'static: boxable as a trait object with no
        // lifetime tying it to the original trace.
        let mut owned: Box<dyn EventSource> = Box::new(trace.clone().into_stream());
        assert_eq!(owned.size_hint(), Some(trace.len() as u64));
        let collected = collect_trace(&mut owned).unwrap();
        assert_eq!(collected.events(), borrowed.events());

        let mut source = trace.clone().into_stream();
        while source.next_event().unwrap().is_some() {}
        source.rewind();
        let replay = collect_trace(&mut source).unwrap();
        assert_eq!(replay.len(), trace.len());
        assert_eq!(source.trace().len(), trace.len());
        assert_eq!(source.into_trace().events(), trace.events());
    }
}
