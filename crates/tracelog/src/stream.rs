//! Streaming event sources — the constant-memory ingestion API.
//!
//! The paper's headline claim is *online* checking: AeroDrome touches each
//! event once, in constant per-event work. This module makes the front
//! half of the tool match: an [`EventSource`] yields events one at a time
//! without ever materialising the whole trace, so a multi-gigabyte `.std`
//! log (or an arbitrarily large generated workload) can flow straight
//! into a checker in constant memory.
//!
//! Implementations provided here:
//!
//! * [`StdReader`] — an incremental `.std` parser over any
//!   [`io::BufRead`]; [`crate::parse_trace`] is a thin collect over it,
//!   so there is exactly one parser.
//! * [`TraceSource`] — an adapter replaying an in-memory [`Trace`]
//!   (see [`Trace::stream`]).
//! * [`Validated`] — the Section 2 well-formedness validator as an online
//!   filter stage wrapping any inner source.
//!
//! Generator-backed sources live in the `workloads` crate; the umbrella
//! crate's `pipeline` module composes source → validator → checker.
//!
//! # Examples
//!
//! ```
//! use tracelog::stream::{EventSource, StdReader};
//!
//! let log = "t1|begin|0\nt1|w(x)|1\nt1|end|2\n";
//! let mut source = StdReader::new(log.as_bytes());
//! let mut n = 0;
//! while let Some(event) = source.next_event()? {
//!     let _ = source.names().display_event(&event);
//!     n += 1;
//! }
//! assert_eq!(n, 3);
//! # Ok::<(), tracelog::stream::SourceError>(())
//! ```

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::ids::{Interner, LockId, ThreadId, VarId};
use crate::parser::{parse_event_line, ParseTraceError};
use crate::trace::{Event, Op, Trace};
use crate::validate::{Validator, ValiditySummary, WellFormedError};

/// An error while pulling events out of a source.
#[derive(Debug)]
pub enum SourceError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A line of the `.std` format did not parse.
    Parse(ParseTraceError),
    /// A [`Validated`] stage rejected an event as ill-formed.
    Malformed(WellFormedError),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "{e}"),
            Self::Parse(e) => write!(f, "{e}"),
            Self::Malformed(e) => write!(f, "not well-formed: {e}"),
        }
    }
}

impl std::error::Error for SourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Parse(e) => Some(e),
            Self::Malformed(e) => Some(e),
        }
    }
}

impl From<io::Error> for SourceError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<ParseTraceError> for SourceError {
    fn from(e: ParseTraceError) -> Self {
        Self::Parse(e)
    }
}

impl From<WellFormedError> for SourceError {
    fn from(e: WellFormedError) -> Self {
        Self::Malformed(e)
    }
}

/// Borrowed name tables of a source: everything needed to render ids
/// (threads, locks, variables) back to the original identifiers.
///
/// The tables grow as the source runs — a name is guaranteed present once
/// an event mentioning it has been yielded.
#[derive(Clone, Copy, Debug)]
pub struct SourceNames<'a> {
    /// Thread name table.
    pub threads: &'a Interner,
    /// Lock name table.
    pub locks: &'a Interner,
    /// Variable name table.
    pub vars: &'a Interner,
}

impl SourceNames<'_> {
    /// Human-readable name of a thread.
    #[must_use]
    pub fn thread_name(&self, t: ThreadId) -> &str {
        self.threads.name(t.index())
    }

    /// Human-readable name of a lock.
    #[must_use]
    pub fn lock_name(&self, l: LockId) -> &str {
        self.locks.name(l.index())
    }

    /// Human-readable name of a variable.
    #[must_use]
    pub fn var_name(&self, x: VarId) -> &str {
        self.vars.name(x.index())
    }

    /// Renders an event with original names, e.g. `⟨t1, w(x)⟩`.
    #[must_use]
    pub fn display_event(&self, e: &Event) -> String {
        let op = match e.op {
            Op::Read(x) => format!("r({})", self.var_name(x)),
            Op::Write(x) => format!("w({})", self.var_name(x)),
            Op::Acquire(l) => format!("acq({})", self.lock_name(l)),
            Op::Release(l) => format!("rel({})", self.lock_name(l)),
            Op::Fork(t) => format!("fork({})", self.thread_name(t)),
            Op::Join(t) => format!("join({})", self.thread_name(t)),
            Op::Begin => "▷".to_owned(),
            Op::End => "◁".to_owned(),
        };
        format!("⟨{}, {}⟩", self.thread_name(e.thread), op)
    }
}

/// A streaming producer of trace events.
///
/// The online counterpart of [`Trace`]: events arrive one at a time in
/// trace order, identifiers are interned densely on first occurrence, and
/// the name tables are available at any point through [`names`]
/// (covering at least every event yielded so far).
///
/// [`names`]: EventSource::names
pub trait EventSource {
    /// Pulls the next event, or `None` at the end of the trace.
    ///
    /// # Errors
    ///
    /// Returns a [`SourceError`] if the underlying reader fails, a line
    /// does not parse, or a validating stage rejects the event.
    fn next_event(&mut self) -> Result<Option<Event>, SourceError>;

    /// The name tables accumulated so far.
    fn names(&self) -> SourceNames<'_>;

    /// Approximate number of events this source expects to yield in
    /// total, when known — a pre-allocation hint, not a contract.
    fn size_hint(&self) -> Option<u64> {
        None
    }
}

impl<S: EventSource + ?Sized> EventSource for &mut S {
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        (**self).next_event()
    }

    fn names(&self) -> SourceNames<'_> {
        (**self).names()
    }

    fn size_hint(&self) -> Option<u64> {
        (**self).size_hint()
    }
}

/// Incremental `.std` parser over any buffered reader.
///
/// Reads one line per event, interning names as they first occur; memory
/// use is bounded by the name tables plus a single line buffer, never by
/// the trace length. Errors carry the 1-based line number and are
/// **fatal**: after one, the reader reports end-of-stream rather than
/// resuming past the malformed line.
///
/// # Examples
///
/// ```
/// use tracelog::stream::{EventSource, StdReader};
///
/// let mut r = StdReader::new("main|fork(w)|0\nw|begin|1\n".as_bytes());
/// while let Some(e) = r.next_event()? { let _ = e; }
/// assert_eq!(r.names().threads.len(), 2);
/// assert_eq!(r.line(), 2);
/// # Ok::<(), tracelog::stream::SourceError>(())
/// ```
#[derive(Debug)]
pub struct StdReader<R> {
    reader: R,
    threads: Interner,
    locks: Interner,
    vars: Interner,
    line: usize,
    buf: String,
    done: bool,
}

impl<R: BufRead> StdReader<R> {
    /// Wraps a buffered reader positioned at the start of a `.std` log.
    #[must_use]
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            threads: Interner::new(),
            locks: Interner::new(),
            vars: Interner::new(),
            line: 0,
            buf: String::new(),
            done: false,
        }
    }

    /// One-based number of the last line read (the line of the most
    /// recently yielded event, once one has been yielded).
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }

    /// Consumes the reader, yielding its `(threads, locks, vars)` name
    /// tables by value — the zero-copy alternative to cloning through
    /// [`EventSource::names`] once the stream is drained (this is how
    /// [`crate::parse_trace`] avoids duplicating the tables).
    #[must_use]
    pub fn into_names(self) -> (Interner, Interner, Interner) {
        (self.threads, self.locks, self.vars)
    }
}

impl<R: BufRead> EventSource for StdReader<R> {
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        if self.done {
            return Ok(None);
        }
        loop {
            self.buf.clear();
            if self.reader.read_line(&mut self.buf)? == 0 {
                self.done = true;
                return Ok(None);
            }
            self.line += 1;
            let line = self.buf.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match parse_event_line(
                line,
                self.line,
                &mut self.threads,
                &mut self.locks,
                &mut self.vars,
            ) {
                Ok(event) => return Ok(Some(event)),
                Err(e) => {
                    // Errors are fatal: the stream has lost alignment, so
                    // resuming would silently drop the malformed event.
                    self.done = true;
                    return Err(e.into());
                }
            }
        }
    }

    fn names(&self) -> SourceNames<'_> {
        SourceNames { threads: &self.threads, locks: &self.locks, vars: &self.vars }
    }
}

/// Replays an in-memory [`Trace`] as a stream (see [`Trace::stream`]).
#[derive(Clone, Debug)]
pub struct TraceSource<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl<'a> TraceSource<'a> {
    /// Creates a source replaying `trace` from the beginning.
    #[must_use]
    pub fn new(trace: &'a Trace) -> Self {
        Self { trace, pos: 0 }
    }
}

impl EventSource for TraceSource<'_> {
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        let event = self.trace.events().get(self.pos).copied();
        self.pos += usize::from(event.is_some());
        Ok(event)
    }

    fn names(&self) -> SourceNames<'_> {
        self.trace.names()
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.trace.len() as u64)
    }
}

impl Trace {
    /// Streams this trace's events through the [`EventSource`] interface.
    #[must_use]
    pub fn stream(&self) -> TraceSource<'_> {
        TraceSource::new(self)
    }

    /// The trace's name tables as [`SourceNames`].
    #[must_use]
    pub fn names(&self) -> SourceNames<'_> {
        SourceNames { threads: &self.threads, locks: &self.locks, vars: &self.vars }
    }
}

/// An online well-formedness filter: passes events through unchanged,
/// failing with [`SourceError::Malformed`] at the first event violating
/// the Section 2 assumptions (the streaming form of [`crate::validate()`]).
#[derive(Debug)]
pub struct Validated<S> {
    inner: S,
    validator: Validator,
}

impl<S: EventSource> Validated<S> {
    /// Wraps `inner` with a fresh validator.
    #[must_use]
    pub fn new(inner: S) -> Self {
        Self { inner, validator: Validator::new() }
    }

    /// The residual open-transaction / held-lock state observed so far.
    #[must_use]
    pub fn summary(&self) -> ValiditySummary {
        self.validator.summary()
    }

    /// The wrapped validator.
    #[must_use]
    pub fn validator(&self) -> &Validator {
        &self.validator
    }

    /// Unwraps the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: EventSource> EventSource for Validated<S> {
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        match self.inner.next_event()? {
            Some(event) => {
                self.validator.observe(event)?;
                Ok(Some(event))
            }
            None => Ok(None),
        }
    }

    fn names(&self) -> SourceNames<'_> {
        self.inner.names()
    }

    fn size_hint(&self) -> Option<u64> {
        self.inner.size_hint()
    }
}

/// Drains a source into an in-memory [`Trace`].
///
/// This is the bridge from the streaming world back to the batch one.
/// The name tables are **cloned** out of the source (the trait only
/// hands out borrows); sources that can be consumed — [`StdReader`] via
/// [`StdReader::into_names`], the workloads generator — pair a manual
/// drain with [`Trace::from_parts`] instead to move the tables.
///
/// # Errors
///
/// Propagates the first [`SourceError`] of the source.
pub fn collect_trace<S: EventSource + ?Sized>(source: &mut S) -> Result<Trace, SourceError> {
    let mut events = Vec::new();
    if let Some(n) = source.size_hint() {
        events.reserve(usize::try_from(n).unwrap_or(0));
    }
    while let Some(event) = source.next_event()? {
        events.push(event);
    }
    let names = source.names();
    Ok(Trace {
        events,
        threads: names.threads.clone(),
        locks: names.locks.clone(),
        vars: names.vars.clone(),
    })
}

/// Streams a source to a writer in the `.std` text format, one event per
/// line with the event's trace offset as the `<loc>` field; returns the
/// number of events written. [`crate::write_trace`] is a thin wrapper, so
/// there is exactly one serialiser.
///
/// # Errors
///
/// Propagates source errors and write failures.
pub fn copy_events<S, W>(source: &mut S, out: &mut W) -> Result<u64, SourceError>
where
    S: EventSource + ?Sized,
    W: Write,
{
    let mut i = 0u64;
    while let Some(e) = source.next_event()? {
        let names = source.names();
        let t = names.thread_name(e.thread);
        match e.op {
            Op::Read(x) => writeln!(out, "{t}|r({})|{i}", names.var_name(x))?,
            Op::Write(x) => writeln!(out, "{t}|w({})|{i}", names.var_name(x))?,
            Op::Acquire(l) => writeln!(out, "{t}|acq({})|{i}", names.lock_name(l))?,
            Op::Release(l) => writeln!(out, "{t}|rel({})|{i}", names.lock_name(l))?,
            Op::Fork(u) => writeln!(out, "{t}|fork({})|{i}", names.thread_name(u))?,
            Op::Join(u) => writeln!(out, "{t}|join({})|{i}", names.thread_name(u))?,
            Op::Begin => writeln!(out, "{t}|begin|{i}")?,
            Op::End => writeln!(out, "{t}|end|{i}")?,
        }
        i += 1;
    }
    out.flush()?;
    Ok(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_trace, write_trace, ParseErrorKind};
    use crate::trace::TraceBuilder;

    fn sample() -> Trace {
        let mut tb = TraceBuilder::new();
        let (t1, t2) = (tb.thread("t1"), tb.thread("t2"));
        let l = tb.lock("m");
        let x = tb.var("x");
        tb.fork(t1, t2)
            .begin(t1)
            .acquire(t1, l)
            .write(t1, x)
            .release(t1, l)
            .end(t1)
            .begin(t2)
            .read(t2, x)
            .end(t2)
            .join(t1, t2);
        tb.finish()
    }

    #[test]
    fn std_reader_yields_same_events_as_batch_parser() {
        let text = write_trace(&sample());
        let batch = parse_trace(&text).unwrap();
        let mut reader = StdReader::new(text.as_bytes());
        let mut events = Vec::new();
        while let Some(e) = reader.next_event().unwrap() {
            events.push(e);
        }
        assert_eq!(events.as_slice(), batch.events());
        assert_eq!(reader.names().threads, batch.thread_names());
        assert_eq!(reader.names().locks, batch.lock_names());
        assert_eq!(reader.names().vars, batch.var_names());
    }

    #[test]
    fn std_reader_reports_line_numbers() {
        let mut reader = StdReader::new("# header\n\nt1|begin|0\nt1|bogus|1\n".as_bytes());
        assert!(reader.next_event().unwrap().is_some());
        assert_eq!(reader.line(), 3);
        let err = reader.next_event().unwrap_err();
        match err {
            SourceError::Parse(p) => {
                assert_eq!(p.line, 4);
                assert!(matches!(p.kind, ParseErrorKind::UnknownOp(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(reader.line(), 4);
    }

    #[test]
    fn trace_source_roundtrips_through_collect() {
        let trace = sample();
        let back = collect_trace(&mut trace.stream()).unwrap();
        assert_eq!(back.events(), trace.events());
        assert_eq!(back.num_threads(), trace.num_threads());
        assert_eq!(trace.stream().size_hint(), Some(trace.len() as u64));
    }

    #[test]
    fn copy_events_matches_write_trace() {
        let trace = sample();
        let mut buf = Vec::new();
        let n = copy_events(&mut trace.stream(), &mut buf).unwrap();
        assert_eq!(n, trace.len() as u64);
        assert_eq!(String::from_utf8(buf).unwrap(), write_trace(&trace));
    }

    #[test]
    fn validated_passes_well_formed_and_rejects_ill_formed() {
        let trace = sample();
        let mut ok = Validated::new(trace.stream());
        while let Some(e) = ok.next_event().unwrap() {
            let _ = e;
        }
        assert!(ok.summary().is_closed());

        let mut v = Validated::new(StdReader::new("t1|rel(m)|0\n".as_bytes()));
        match v.next_event() {
            Err(SourceError::Malformed(WellFormedError::ReleaseOfUnheldLock { .. })) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn source_names_render_events() {
        let trace = sample();
        let names = trace.names();
        assert_eq!(names.display_event(&trace[3]), trace.display_event(&trace[3]));
        assert_eq!(names.thread_name(trace[0].thread), "t1");
    }

    #[test]
    fn mut_ref_sources_forward() {
        let trace = sample();
        let mut s = trace.stream();
        let via_ref: &mut TraceSource<'_> = &mut s;
        assert_eq!(via_ref.size_hint(), Some(trace.len() as u64));
        let collected = collect_trace(&mut &mut s).unwrap();
        assert_eq!(collected.len(), trace.len());
    }
}
