//! Binary wire codec for event chunks — the payload format of the
//! `rapid serve` service protocol (see `docs/SERVICE.md`).
//!
//! The `.std` text format is the *interchange* format; it is the wrong
//! thing to push through a socket per event (a parse per line, a name
//! lookup per field). This module defines the compact on-the-wire form
//! the checking service uses instead:
//!
//! * **Event records** — fixed-width ([`EVENT_RECORD_BYTES`] bytes each):
//!   a one-byte operation tag, the thread index and the operand index,
//!   little-endian. A chunk of records decodes straight into an
//!   [`EventBatch`] with no per-event allocation or string handling —
//!   [`decode_events`] is a bounds check and a table lookup per event.
//! * **Name records** — variable-width definitions binding a dense index
//!   to a UTF-8 name, per id space (threads, locks, variables). A client
//!   sends each name **once**, before the first event that references
//!   it; [`decode_names`] enforces the dense-allocation invariant the
//!   checkers rely on (index `n` must be defined when the table holds
//!   exactly `n` names).
//!
//! Both directions are pure functions over byte slices — no I/O — so the
//! codec is usable from the server, the client library and the tests
//! without dragging sockets in. Encoding and decoding round-trip
//! bit-identically; every decoder rejects truncated and malformed input
//! with a typed [`WireError`] instead of panicking, because the bytes
//! come from the network.

use std::fmt;

use crate::ids::{Interner, LockId, ThreadId, VarId};
use crate::stream::EventBatch;
use crate::trace::{Event, Op};

/// Size of one encoded event record, in bytes: `[op u8][thread u32 LE]
/// [operand u32 LE]`.
pub const EVENT_RECORD_BYTES: usize = 9;

/// A malformed wire payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The payload length is not a whole number of records, or a record
    /// was cut short.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes left over.
        at: usize,
    },
    /// An event record carried an unknown operation tag.
    BadOpTag(u8),
    /// A name record carried an unknown id-space tag.
    BadNameKind(u8),
    /// A name definition arrived out of dense order (index ≠ current
    /// table size) or redefined an existing index with a different name.
    NonDenseName {
        /// The id space of the offending record.
        kind: NameKind,
        /// The index the record tried to define.
        index: u32,
        /// The table size at that point (the only legal index).
        expected: u32,
    },
    /// A name was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { what, at } => {
                write!(f, "truncated {what} record ({at} trailing byte(s))")
            }
            Self::BadOpTag(t) => write!(f, "unknown event op tag {t:#04x}"),
            Self::BadNameKind(k) => write!(f, "unknown name-space tag {k:#04x}"),
            Self::NonDenseName { kind, index, expected } => write!(
                f,
                "non-dense {kind} name definition: got index {index}, expected {expected}"
            ),
            Self::BadUtf8 => write!(f, "name is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// The id space a name record defines into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NameKind {
    /// Thread names.
    Thread,
    /// Lock names.
    Lock,
    /// Variable names.
    Var,
}

impl NameKind {
    fn tag(self) -> u8 {
        match self {
            Self::Thread => 0,
            Self::Lock => 1,
            Self::Var => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(Self::Thread),
            1 => Ok(Self::Lock),
            2 => Ok(Self::Var),
            other => Err(WireError::BadNameKind(other)),
        }
    }
}

impl fmt::Display for NameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Thread => "thread",
            Self::Lock => "lock",
            Self::Var => "var",
        })
    }
}

/// Operation tags. Stable protocol constants — append-only.
const OP_READ: u8 = 0;
const OP_WRITE: u8 = 1;
const OP_ACQUIRE: u8 = 2;
const OP_RELEASE: u8 = 3;
const OP_FORK: u8 = 4;
const OP_JOIN: u8 = 5;
const OP_BEGIN: u8 = 6;
const OP_END: u8 = 7;

fn op_parts(op: Op) -> (u8, u32) {
    match op {
        Op::Read(x) => (OP_READ, x.index() as u32),
        Op::Write(x) => (OP_WRITE, x.index() as u32),
        Op::Acquire(l) => (OP_ACQUIRE, l.index() as u32),
        Op::Release(l) => (OP_RELEASE, l.index() as u32),
        Op::Fork(t) => (OP_FORK, t.index() as u32),
        Op::Join(t) => (OP_JOIN, t.index() as u32),
        Op::Begin => (OP_BEGIN, 0),
        Op::End => (OP_END, 0),
    }
}

fn op_from_parts(tag: u8, arg: u32) -> Result<Op, WireError> {
    let arg = arg as usize;
    Ok(match tag {
        OP_READ => Op::Read(VarId::from_index(arg)),
        OP_WRITE => Op::Write(VarId::from_index(arg)),
        OP_ACQUIRE => Op::Acquire(LockId::from_index(arg)),
        OP_RELEASE => Op::Release(LockId::from_index(arg)),
        OP_FORK => Op::Fork(ThreadId::from_index(arg)),
        OP_JOIN => Op::Join(ThreadId::from_index(arg)),
        OP_BEGIN => Op::Begin,
        OP_END => Op::End,
        other => return Err(WireError::BadOpTag(other)),
    })
}

/// Appends one encoded event record to `out`.
pub fn encode_event(event: Event, out: &mut Vec<u8>) {
    let (tag, arg) = op_parts(event.op);
    out.push(tag);
    out.extend_from_slice(&(event.thread.index() as u32).to_le_bytes());
    out.extend_from_slice(&arg.to_le_bytes());
}

/// Appends the encoded records of `events` to `out`
/// (`events.len() * EVENT_RECORD_BYTES` bytes).
pub fn encode_events(events: &[Event], out: &mut Vec<u8>) {
    out.reserve(events.len() * EVENT_RECORD_BYTES);
    for &event in events {
        encode_event(event, out);
    }
}

/// Decodes a chunk of event records, **appending** to `batch` (the
/// caller clears it; the service appends a socket read's worth of frames
/// into one batch before feeding the checkers). Returns the number of
/// events appended.
///
/// # Errors
///
/// [`WireError::Truncated`] if `payload` is not a whole number of
/// records; [`WireError::BadOpTag`] on an unknown tag. On error the
/// batch keeps the records decoded before the failure — callers
/// poisoning a session on error must not feed that prefix.
pub fn decode_events(payload: &[u8], batch: &mut EventBatch) -> Result<usize, WireError> {
    if !payload.len().is_multiple_of(EVENT_RECORD_BYTES) {
        return Err(WireError::Truncated { what: "event", at: payload.len() % EVENT_RECORD_BYTES });
    }
    let n = payload.len() / EVENT_RECORD_BYTES;
    for record in payload.chunks_exact(EVENT_RECORD_BYTES) {
        batch.push(decode_record(record)?);
    }
    Ok(n)
}

/// Decodes exactly one [`EVENT_RECORD_BYTES`]-byte event record. Shared
/// by [`decode_events`] and the `binfmt` on-disk reader, so the two
/// decoders cannot drift.
pub(crate) fn decode_record(record: &[u8]) -> Result<Event, WireError> {
    debug_assert_eq!(record.len(), EVENT_RECORD_BYTES, "callers slice whole records");
    let tag = record[0];
    let thread = u32::from_le_bytes(record[1..5].try_into().expect("4-byte slice"));
    let arg = u32::from_le_bytes(record[5..9].try_into().expect("4-byte slice"));
    let op = op_from_parts(tag, arg)?;
    Ok(Event::new(ThreadId::from_index(thread as usize), op))
}

/// Appends one encoded name record to `out`: `[kind u8][index u32 LE]
/// [len u16 LE][utf8 bytes]`.
pub fn encode_name(kind: NameKind, index: u32, name: &str, out: &mut Vec<u8>) {
    debug_assert!(name.len() <= u16::MAX as usize, "interned names are short");
    out.push(kind.tag());
    out.extend_from_slice(&index.to_le_bytes());
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
}

/// Decodes a chunk of name records into the three interners, enforcing
/// dense allocation order per id space. Returns the number of records
/// decoded. Re-definitions of an existing index with the **same** name
/// are idempotent no-ops (a retransmitted frame must not poison a
/// session); a different name is [`WireError::NonDenseName`].
///
/// # Errors
///
/// Truncated records, unknown kind tags, non-UTF-8 names and non-dense
/// indices are all rejected.
pub fn decode_names(
    payload: &[u8],
    threads: &mut Interner,
    locks: &mut Interner,
    vars: &mut Interner,
) -> Result<usize, WireError> {
    let mut rest = payload;
    let mut decoded = 0;
    while !rest.is_empty() {
        if rest.len() < 7 {
            return Err(WireError::Truncated { what: "name", at: rest.len() });
        }
        let kind = NameKind::from_tag(rest[0])?;
        let index = u32::from_le_bytes(rest[1..5].try_into().expect("4-byte slice"));
        let len = u16::from_le_bytes(rest[5..7].try_into().expect("2-byte slice")) as usize;
        if rest.len() < 7 + len {
            return Err(WireError::Truncated { what: "name", at: rest.len() });
        }
        let name = std::str::from_utf8(&rest[7..7 + len]).map_err(|_| WireError::BadUtf8)?;
        let table = match kind {
            NameKind::Thread => &mut *threads,
            NameKind::Lock => locks,
            NameKind::Var => vars,
        };
        let expected = table.len() as u32;
        if index < expected {
            // Idempotent retransmit — only if it binds the same name.
            if table.name(index as usize) != name {
                return Err(WireError::NonDenseName { kind, index, expected });
            }
        } else if index == expected {
            table.intern(name);
        } else {
            return Err(WireError::NonDenseName { kind, index, expected });
        }
        rest = &rest[7 + len..];
        decoded += 1;
    }
    Ok(decoded)
}

/// Encodes the tail of an interner (entries from `from` on) as name
/// records — the incremental "send each name once" sync a streaming
/// client performs before each event chunk. Returns the new table size
/// to remember as the next `from`.
pub fn encode_new_names(kind: NameKind, table: &Interner, from: usize, out: &mut Vec<u8>) -> usize {
    for (i, name) in table.iter().enumerate().skip(from) {
        encode_name(kind, i as u32, name, out);
    }
    table.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn sample_events() -> Vec<Event> {
        let mut tb = TraceBuilder::new();
        let (t1, t2) = (tb.thread("t1"), tb.thread("t2"));
        let l = tb.lock("m");
        let x = tb.var("x");
        tb.fork(t1, t2)
            .begin(t1)
            .acquire(t1, l)
            .read(t1, x)
            .write(t1, x)
            .release(t1, l)
            .end(t1)
            .begin(t2)
            .read(t2, x)
            .end(t2)
            .join(t1, t2);
        tb.finish().events().to_vec()
    }

    #[test]
    fn events_roundtrip_bit_identically() {
        let events = sample_events();
        let mut payload = Vec::new();
        encode_events(&events, &mut payload);
        assert_eq!(payload.len(), events.len() * EVENT_RECORD_BYTES);

        let mut batch = EventBatch::with_target(events.len().max(1));
        let n = decode_events(&payload, &mut batch).unwrap();
        assert_eq!(n, events.len());
        assert_eq!(batch.events(), events.as_slice());
    }

    #[test]
    fn decode_appends_across_chunks() {
        let events = sample_events();
        let mut batch = EventBatch::with_target(events.len().max(1));
        for chunk in events.chunks(3) {
            let mut payload = Vec::new();
            encode_events(chunk, &mut payload);
            decode_events(&payload, &mut batch).unwrap();
        }
        assert_eq!(batch.events(), events.as_slice());
    }

    #[test]
    fn truncated_and_bad_tag_records_are_rejected() {
        let events = sample_events();
        let mut payload = Vec::new();
        encode_events(&events, &mut payload);

        let mut batch = EventBatch::new();
        let err = decode_events(&payload[..EVENT_RECORD_BYTES + 3], &mut batch).unwrap_err();
        assert!(matches!(err, WireError::Truncated { what: "event", at: 3 }));

        let mut bad = payload.clone();
        bad[0] = 0xEE;
        let err = decode_events(&bad, &mut batch).unwrap_err();
        assert_eq!(err, WireError::BadOpTag(0xEE));
    }

    #[test]
    fn names_roundtrip_and_enforce_density() {
        let mut payload = Vec::new();
        encode_name(NameKind::Thread, 0, "main", &mut payload);
        encode_name(NameKind::Thread, 1, "worker", &mut payload);
        encode_name(NameKind::Lock, 0, "m", &mut payload);
        encode_name(NameKind::Var, 0, "x", &mut payload);

        let (mut t, mut l, mut v) = (Interner::new(), Interner::new(), Interner::new());
        assert_eq!(decode_names(&payload, &mut t, &mut l, &mut v).unwrap(), 4);
        assert_eq!(t.name(1), "worker");
        assert_eq!(l.name(0), "m");
        assert_eq!(v.name(0), "x");

        // Same-name retransmit is idempotent …
        assert_eq!(decode_names(&payload, &mut t, &mut l, &mut v).unwrap(), 4);
        assert_eq!(t.len(), 2);

        // … a hole is not.
        let mut gap = Vec::new();
        encode_name(NameKind::Var, 5, "y", &mut gap);
        let err = decode_names(&gap, &mut t, &mut l, &mut v).unwrap_err();
        assert!(matches!(
            err,
            WireError::NonDenseName { kind: NameKind::Var, index: 5, expected: 1 }
        ));

        // … and neither is rebinding index 0 to a different name.
        let mut rebind = Vec::new();
        encode_name(NameKind::Var, 0, "z", &mut rebind);
        assert!(decode_names(&rebind, &mut t, &mut l, &mut v).is_err());
    }

    #[test]
    fn truncated_name_records_are_rejected() {
        let mut payload = Vec::new();
        encode_name(NameKind::Lock, 0, "lock-with-a-name", &mut payload);
        let (mut t, mut l, mut v) = (Interner::new(), Interner::new(), Interner::new());
        for cut in [1, 4, 9, payload.len() - 1] {
            assert!(
                decode_names(&payload[..cut], &mut t, &mut l, &mut v).is_err(),
                "cut at {cut} must be rejected"
            );
        }
        let mut bad_kind = payload.clone();
        bad_kind[0] = 9;
        assert!(matches!(
            decode_names(&bad_kind, &mut t, &mut l, &mut v).unwrap_err(),
            WireError::BadNameKind(9)
        ));
    }

    #[test]
    fn encode_new_names_sends_each_name_once() {
        let mut table = Interner::new();
        table.intern("a");
        table.intern("b");
        let mut out = Vec::new();
        let mut sent = encode_new_names(NameKind::Thread, &table, 0, &mut out);
        assert_eq!(sent, 2);
        table.intern("c");
        let before = out.len();
        sent = encode_new_names(NameKind::Thread, &table, sent, &mut out);
        assert_eq!(sent, 3);

        let (mut t, mut l, mut v) = (Interner::new(), Interner::new(), Interner::new());
        decode_names(&out, &mut t, &mut l, &mut v).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.name(2), "c");

        // The second sync encoded only the new name: decoding just that
        // tail into an empty table trips the density check at index 2.
        let mut fresh = Interner::new();
        let err = decode_names(&out[before..], &mut fresh, &mut l, &mut v).unwrap_err();
        assert!(matches!(
            err,
            WireError::NonDenseName { kind: NameKind::Thread, index: 2, expected: 0 }
        ));
    }
}
