//! Trace containers: events, operations and the trace builder.

use std::fmt;
use std::ops::Index;

use crate::ids::{Interner, LockId, ThreadId, VarId};

/// The operation `op` of an event `⟨t, op⟩` (Section 2 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// `r(x)` — read of memory location `x`.
    Read(VarId),
    /// `w(x)` — write of memory location `x`.
    Write(VarId),
    /// `acq(ℓ)` — acquire of lock `ℓ`.
    Acquire(LockId),
    /// `rel(ℓ)` — release of lock `ℓ`.
    Release(LockId),
    /// `fork(u)` — creation of child thread `u`.
    Fork(ThreadId),
    /// `join(u)` — join on child thread `u`.
    Join(ThreadId),
    /// `⊲` — begin of an atomic block (transaction).
    Begin,
    /// `⊳` — end of an atomic block (transaction).
    End,
}

impl Op {
    /// Whether this operation is a transaction boundary (`⊲` or `⊳`).
    #[must_use]
    pub fn is_boundary(self) -> bool {
        matches!(self, Op::Begin | Op::End)
    }

    /// Whether this operation is a memory access (`r(x)` or `w(x)`).
    #[must_use]
    pub fn is_access(self) -> bool {
        matches!(self, Op::Read(_) | Op::Write(_))
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read(x) => write!(f, "r({x})"),
            Op::Write(x) => write!(f, "w({x})"),
            Op::Acquire(l) => write!(f, "acq({l})"),
            Op::Release(l) => write!(f, "rel({l})"),
            Op::Fork(t) => write!(f, "fork({t})"),
            Op::Join(t) => write!(f, "join({t})"),
            Op::Begin => write!(f, "▷"),
            Op::End => write!(f, "◁"),
        }
    }
}

/// The position of an event within its trace (`e_i` in the paper's
/// examples, zero-based here).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub u64);

impl EventId {
    /// The zero-based trace offset.
    #[must_use]
    pub fn index(self) -> usize {
        usize::try_from(self.0).expect("event index exceeds usize")
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Paper examples are 1-based (`e1` is the first event).
        write!(f, "e{}", self.0 + 1)
    }
}

/// A single event `⟨t, op⟩`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Event {
    /// The thread `thr(e)` performing the event.
    pub thread: ThreadId,
    /// The operation `op(e)` performed.
    pub op: Op,
}

impl Event {
    /// Creates the event `⟨thread, op⟩`.
    #[must_use]
    pub fn new(thread: ThreadId, op: Op) -> Self {
        Self { thread, op }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.thread, self.op)
    }
}

/// An execution trace: a finite sequence of events plus the name tables
/// for its threads, locks and variables.
///
/// Construct traces through [`TraceBuilder`] (or [`crate::parse_trace`]);
/// the builder keeps identifier allocation dense, which the analyses rely
/// on for O(1) state lookup.
#[derive(Clone, Default, Debug)]
pub struct Trace {
    pub(crate) events: Vec<Event>,
    pub(crate) threads: Interner,
    pub(crate) locks: Interner,
    pub(crate) vars: Interner,
}

impl Trace {
    /// Assembles a trace from an event sequence and its name tables.
    ///
    /// The ids inside `events` must be dense indices into the matching
    /// tables (as produced by any [`crate::stream::EventSource`]); this
    /// is the zero-copy counterpart of
    /// [`collect_trace`](crate::stream::collect_trace) for sources that
    /// can give up their tables by value.
    #[must_use]
    pub fn from_parts(
        events: Vec<Event>,
        threads: Interner,
        locks: Interner,
        vars: Interner,
    ) -> Self {
        Self { events, threads, locks, vars }
    }

    /// The number of events `n = |σ|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The number of distinct threads `|Thr|`.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The number of distinct locks `L`.
    #[must_use]
    pub fn num_locks(&self) -> usize {
        self.locks.len()
    }

    /// The number of distinct memory locations `V`.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Iterates over the events in trace order (`≤tr`).
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// The events as a slice.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The thread name table.
    #[must_use]
    pub fn thread_names(&self) -> &Interner {
        &self.threads
    }

    /// The lock name table.
    #[must_use]
    pub fn lock_names(&self) -> &Interner {
        &self.locks
    }

    /// The variable name table.
    #[must_use]
    pub fn var_names(&self) -> &Interner {
        &self.vars
    }

    /// Human-readable name of a thread.
    #[must_use]
    pub fn thread_name(&self, t: ThreadId) -> &str {
        self.threads.name(t.index())
    }

    /// Human-readable name of a lock.
    #[must_use]
    pub fn lock_name(&self, l: LockId) -> &str {
        self.locks.name(l.index())
    }

    /// Human-readable name of a variable.
    #[must_use]
    pub fn var_name(&self, x: VarId) -> &str {
        self.vars.name(x.index())
    }

    /// Renders an event with original names, e.g. `⟨t1, w(x)⟩`.
    #[must_use]
    pub fn display_event(&self, e: &Event) -> String {
        self.names().display_event(e)
    }
}

impl Index<usize> for Trace {
    type Output = Event;

    fn index(&self, i: usize) -> &Event {
        &self.events[i]
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// Incremental constructor for [`Trace`].
///
/// Thread, lock and variable identifiers are interned on first use; events
/// are appended in trace order.
///
/// # Examples
///
/// ```
/// use tracelog::TraceBuilder;
///
/// let mut tb = TraceBuilder::new();
/// let t = tb.thread("main");
/// let l = tb.lock("mu");
/// tb.begin(t);
/// tb.acquire(t, l);
/// tb.release(t, l);
/// tb.end(t);
/// assert_eq!(tb.finish().len(), 4);
/// ```
#[derive(Clone, Default, Debug)]
pub struct TraceBuilder {
    trace: Trace,
}

impl TraceBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a thread name.
    pub fn thread(&mut self, name: &str) -> ThreadId {
        ThreadId::from_index(self.trace.threads.intern(name))
    }

    /// Interns a lock name.
    pub fn lock(&mut self, name: &str) -> LockId {
        LockId::from_index(self.trace.locks.intern(name))
    }

    /// Interns a variable name.
    pub fn var(&mut self, name: &str) -> VarId {
        VarId::from_index(self.trace.vars.intern(name))
    }

    /// Appends an arbitrary event.
    pub fn push(&mut self, event: Event) -> &mut Self {
        self.trace.events.push(event);
        self
    }

    /// Appends `⟨t, r(x)⟩`.
    pub fn read(&mut self, t: ThreadId, x: VarId) -> &mut Self {
        self.push(Event::new(t, Op::Read(x)))
    }

    /// Appends `⟨t, w(x)⟩`.
    pub fn write(&mut self, t: ThreadId, x: VarId) -> &mut Self {
        self.push(Event::new(t, Op::Write(x)))
    }

    /// Appends `⟨t, acq(l)⟩`.
    pub fn acquire(&mut self, t: ThreadId, l: LockId) -> &mut Self {
        self.push(Event::new(t, Op::Acquire(l)))
    }

    /// Appends `⟨t, rel(l)⟩`.
    pub fn release(&mut self, t: ThreadId, l: LockId) -> &mut Self {
        self.push(Event::new(t, Op::Release(l)))
    }

    /// Appends `⟨t, fork(u)⟩`.
    pub fn fork(&mut self, t: ThreadId, u: ThreadId) -> &mut Self {
        self.push(Event::new(t, Op::Fork(u)))
    }

    /// Appends `⟨t, join(u)⟩`.
    pub fn join(&mut self, t: ThreadId, u: ThreadId) -> &mut Self {
        self.push(Event::new(t, Op::Join(u)))
    }

    /// Appends `⟨t, ⊲⟩`.
    pub fn begin(&mut self, t: ThreadId) -> &mut Self {
        self.push(Event::new(t, Op::Begin))
    }

    /// Appends `⟨t, ⊳⟩`.
    pub fn end(&mut self, t: ThreadId) -> &mut Self {
        self.push(Event::new(t, Op::End))
    }

    /// Number of events appended so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether no event has been appended yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Finalises the trace.
    #[must_use]
    pub fn finish(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_interns_densely() {
        let mut tb = TraceBuilder::new();
        let t1 = tb.thread("t1");
        let t2 = tb.thread("t2");
        assert_eq!((t1.index(), t2.index()), (0, 1));
        assert_eq!(tb.thread("t1"), t1);
        let x = tb.var("x");
        let y = tb.var("y");
        assert_eq!((x.index(), y.index()), (0, 1));
    }

    #[test]
    fn events_preserve_order() {
        let mut tb = TraceBuilder::new();
        let t = tb.thread("t1");
        let x = tb.var("x");
        tb.begin(t).write(t, x).end(t);
        let tr = tb.finish();
        assert_eq!(tr.len(), 3);
        assert_eq!(tr[0].op, Op::Begin);
        assert_eq!(tr[1].op, Op::Write(x));
        assert_eq!(tr[2].op, Op::End);
        assert!(tr.iter().all(|e| e.thread == t));
    }

    #[test]
    fn display_event_uses_names() {
        let mut tb = TraceBuilder::new();
        let t = tb.thread("main");
        let x = tb.var("balance");
        tb.write(t, x);
        let tr = tb.finish();
        assert_eq!(tr.display_event(&tr[0]), "⟨main, w(balance)⟩");
    }

    #[test]
    fn op_predicates() {
        assert!(Op::Begin.is_boundary());
        assert!(Op::End.is_boundary());
        assert!(!Op::Read(VarId::from_index(0)).is_boundary());
        assert!(Op::Read(VarId::from_index(0)).is_access());
        assert!(Op::Write(VarId::from_index(0)).is_access());
        assert!(!Op::Acquire(LockId::from_index(0)).is_access());
    }

    #[test]
    fn event_id_displays_one_based() {
        assert_eq!(EventId(0).to_string(), "e1");
        assert_eq!(EventId(9).to_string(), "e10");
        assert_eq!(EventId(3).index(), 3);
    }

    #[test]
    fn counts_reflect_interners() {
        let mut tb = TraceBuilder::new();
        let t = tb.thread("a");
        let _ = tb.thread("b");
        let l = tb.lock("m");
        let x = tb.var("x");
        tb.acquire(t, l).write(t, x).release(t, l);
        let tr = tb.finish();
        assert_eq!(tr.num_threads(), 2);
        assert_eq!(tr.num_locks(), 1);
        assert_eq!(tr.num_vars(), 1);
        assert!(!tr.is_empty());
    }
}
