//! Property tests for the trace substrate: parser fixpoint,
//! validator/segmentation invariants on arbitrary well-formed traces,
//! and streaming ≡ batch differentials for the parser, validator and
//! statistics.

use proptest::prelude::*;
use tracelog::stream::{EventSource, StdReader};
use tracelog::{
    parse_trace, validate, write_trace, EventId, MetaInfo, Op, Trace, TraceBuilder, Transactions,
    Validator,
};

#[derive(Clone, Copy, Debug)]
enum Step {
    Read(u8),
    Write(u8),
    Acquire(u8),
    Release,
    Begin,
    End,
    ForkNext,
    JoinLast,
}

/// Repairs arbitrary step sequences into a well-formed trace (possibly
/// with open transactions/locks at the end — still valid, like a prefix).
fn build(steps: &[(u8, Step)], threads: usize, close: bool) -> Trace {
    let mut tb = TraceBuilder::new();
    let tids: Vec<_> = (0..threads).map(|i| tb.thread(&format!("t{i}"))).collect();
    let vars: Vec<_> = (0..3).map(|i| tb.var(&format!("v{i}"))).collect();
    let locks: Vec<_> = (0..2).map(|i| tb.lock(&format!("m{i}"))).collect();
    let mut held: Vec<Vec<usize>> = vec![Vec::new(); threads];
    let mut holder = vec![None::<usize>; locks.len()];
    let mut depth = vec![0usize; threads];
    let mut forked = vec![false; threads];
    let mut joined = vec![false; threads];
    let mut started = vec![false; threads];

    for &(who, step) in steps {
        let ti = (who as usize) % threads;
        if joined[ti] {
            continue;
        }
        let t = tids[ti];
        started[ti] = true;
        match step {
            Step::Read(v) => {
                tb.read(t, vars[(v as usize) % vars.len()]);
            }
            Step::Write(v) => {
                tb.write(t, vars[(v as usize) % vars.len()]);
            }
            Step::Acquire(l) => {
                let li = (l as usize) % locks.len();
                match holder[li] {
                    None | Some(_) if holder[li].is_none() || holder[li] == Some(ti) => {
                        holder[li] = Some(ti);
                        held[ti].push(li);
                        tb.acquire(t, locks[li]);
                    }
                    _ => {}
                }
            }
            Step::Release => {
                if let Some(li) = held[ti].pop() {
                    tb.release(t, locks[li]);
                    if !held[ti].contains(&li) {
                        holder[li] = None;
                    }
                }
            }
            Step::Begin => {
                if depth[ti] < 3 {
                    tb.begin(t);
                    depth[ti] += 1;
                }
            }
            Step::End => {
                if depth[ti] > 0 {
                    tb.end(t);
                    depth[ti] -= 1;
                }
            }
            Step::ForkNext => {
                let u = (ti + 1) % threads;
                if u != ti && !forked[u] && !started[u] && !joined[u] {
                    tb.fork(t, tids[u]);
                    forked[u] = true;
                }
            }
            Step::JoinLast => {
                let u = (ti + 1) % threads;
                if u != ti && !joined[u] && depth[u] == 0 && held[u].is_empty() {
                    tb.join(t, tids[u]);
                    joined[u] = true;
                }
            }
        }
    }
    if close {
        for ti in 0..threads {
            if joined[ti] {
                continue;
            }
            while let Some(li) = held[ti].pop() {
                tb.release(tids[ti], locks[li]);
                if !held[ti].contains(&li) {
                    holder[li] = None;
                }
            }
            while depth[ti] > 0 {
                tb.end(tids[ti]);
                depth[ti] -= 1;
            }
        }
    }
    tb.finish()
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (0u8..3).prop_map(Step::Read),
        4 => (0u8..3).prop_map(Step::Write),
        2 => (0u8..2).prop_map(Step::Acquire),
        2 => Just(Step::Release),
        3 => Just(Step::Begin),
        3 => Just(Step::End),
        1 => Just(Step::ForkNext),
        1 => Just(Step::JoinLast),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn repaired_traces_validate(
        steps in prop::collection::vec(((0u8..4), step_strategy()), 0..80),
        threads in 1usize..4,
        close in any::<bool>(),
    ) {
        let trace = build(&steps, threads, close);
        let summary = validate(&trace).expect("repair produces well-formed traces");
        if close {
            prop_assert!(summary.is_closed());
        }
    }

    #[test]
    fn serialization_is_a_fixpoint(
        steps in prop::collection::vec(((0u8..4), step_strategy()), 0..60),
        threads in 1usize..4,
    ) {
        let trace = build(&steps, threads, true);
        let text = write_trace(&trace);
        let back = parse_trace(&text).expect("own output parses");
        prop_assert_eq!(write_trace(&back), text);
        prop_assert_eq!(back.len(), trace.len());
        // Event kinds survive even if indices are re-interned.
        for (a, b) in trace.iter().zip(back.iter()) {
            prop_assert_eq!(
                std::mem::discriminant(&a.op),
                std::mem::discriminant(&b.op)
            );
        }
    }

    #[test]
    fn segmentation_partitions_all_events(
        steps in prop::collection::vec(((0u8..4), step_strategy()), 0..80),
        threads in 1usize..4,
    ) {
        let trace = build(&steps, threads, true);
        let txns = Transactions::segment(&trace);
        let mut counted = 0usize;
        for txn in txns.iter() {
            counted += txn.num_events;
        }
        prop_assert_eq!(counted, trace.len(), "every event in exactly one txn");
        // txn_of is consistent with membership thread-wise.
        for (i, e) in trace.iter().enumerate() {
            let t = txns.txn_of(EventId(i as u64));
            prop_assert_eq!(txns[t].thread, e.thread);
        }
        // Non-unary count equals the number of outermost begins.
        let mut depth = vec![0usize; trace.num_threads()];
        let mut outermost = 0usize;
        for e in &trace {
            match e.op {
                Op::Begin => {
                    if depth[e.thread.index()] == 0 {
                        outermost += 1;
                    }
                    depth[e.thread.index()] += 1;
                }
                Op::End => depth[e.thread.index()] = depth[e.thread.index()].saturating_sub(1),
                _ => {}
            }
        }
        prop_assert_eq!(txns.non_unary_count(), outermost);
        // Completed transactions have begin ≤ end.
        for txn in txns.iter() {
            if let (Some(b), Some(e)) = (txn.begin, txn.end) {
                prop_assert!(b <= e);
            }
        }
    }

    #[test]
    fn streaming_parse_equals_batch_parse(
        steps in prop::collection::vec(((0u8..4), step_strategy()), 0..80),
        threads in 1usize..4,
        close in any::<bool>(),
    ) {
        // Round-trip an arbitrary well-formed trace through the text
        // format, then parse it both ways: `parse_trace` is a collect
        // over `StdReader`, but this asserts the *incremental* protocol
        // (event-at-a-time, names growing as they first occur) agrees
        // with the batch result at every step.
        let trace = build(&steps, threads, close);
        let text = write_trace(&trace);
        let batch = parse_trace(&text).expect("own output parses");
        let mut reader = StdReader::new(text.as_bytes());
        let mut streamed = Vec::new();
        while let Some(e) = reader.next_event().expect("own output parses") {
            streamed.push(e);
        }
        prop_assert_eq!(streamed.as_slice(), batch.events());
        prop_assert_eq!(reader.names().threads, batch.thread_names());
        prop_assert_eq!(reader.names().locks, batch.lock_names());
        prop_assert_eq!(reader.names().vars, batch.var_names());
    }

    #[test]
    fn streaming_validator_equals_batch_validate(
        steps in prop::collection::vec(((0u8..4), step_strategy()), 0..80),
        threads in 1usize..4,
        close in any::<bool>(),
    ) {
        let trace = build(&steps, threads, close);
        let batch = validate(&trace).expect("repair produces well-formed traces");
        let mut v = Validator::new();
        for &e in &trace {
            v.observe(e).expect("streaming agrees on well-formedness");
        }
        prop_assert_eq!(v.events_observed(), trace.len() as u64);
        prop_assert_eq!(v.summary(), batch.clone());
        prop_assert_eq!(v.finish(), batch);
    }

    #[test]
    fn streaming_metainfo_equals_batch_metainfo(
        steps in prop::collection::vec(((0u8..4), step_strategy()), 0..80),
        threads in 1usize..4,
    ) {
        let trace = build(&steps, threads, true);
        let streamed = MetaInfo::collect(&mut trace.stream()).expect("trace sources cannot fail");
        prop_assert_eq!(streamed, MetaInfo::of(&trace));
    }

    #[test]
    fn metainfo_is_consistent(
        steps in prop::collection::vec(((0u8..4), step_strategy()), 0..80),
        threads in 1usize..4,
    ) {
        let trace = build(&steps, threads, true);
        let info = tracelog::MetaInfo::of(&trace);
        prop_assert_eq!(
            info.events,
            info.reads + info.writes + info.acquires + info.releases
                + info.forks + info.joins + info.begins + info.ends
        );
        prop_assert_eq!(info.acquires, info.releases, "closed traces balance locks");
        prop_assert_eq!(info.begins, info.ends, "closed traces balance txns");
    }
}
