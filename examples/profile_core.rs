//! Internal profiling driver: runs one clock core over one shape many
//! times. Usage: `profile_core [pooled|cloned] [shape] [reps]`.

use aerodrome::optimized::{ClonedOptimizedChecker, OptimizedChecker};
use aerodrome::run_checker;
use bench::seed_baseline::SeedOptimizedChecker;
use workloads::GenConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let core = args.get(1).map_or("pooled", String::as_str).to_owned();
    let shape = args.get(2).map_or("fanout", String::as_str).to_owned();
    let reps: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(50);
    let cfg = GenConfig {
        seed: 11,
        threads: if shape == "fanout" { 33 } else { 8 },
        events: std::env::var("EVENTS").ok().and_then(|v| v.parse().ok()).unwrap_or(20_000),
        ..GenConfig::default()
    };
    let trace =
        workloads::shapes::collect(&shape, &cfg).unwrap_or_else(|| workloads::generate(&cfg));
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        let outcome = match core.as_str() {
            "cloned" => run_checker(&mut ClonedOptimizedChecker::new(), &trace),
            "seed" => run_checker(&mut SeedOptimizedChecker::new(), &trace),
            _ => run_checker(&mut OptimizedChecker::new(), &trace),
        };
        assert!(!outcome.is_violation());
    }
    println!("{core}/{shape}: {:?} for {reps} reps", t0.elapsed());
}
