//! Online monitoring: AeroDrome as it would run in production — events
//! stream in, state stays O(threads · (vars + locks)) clocks, and the
//! first violation stops the world.
//!
//! The workload is a scaled `sunflow`-style run (realistic atomicity
//! spec, long-lived transactions, violation late in the trace), checked
//! by AeroDrome and Velodrome side by side with per-chunk timings.
//!
//! Run with: `cargo run --release --example online_monitor`

use std::time::Instant;

use aerodrome_suite::prelude::*;
use velodrome::VelodromeChecker;

fn main() {
    let cfg = GenConfig {
        seed: 2024,
        threads: 8,
        locks: 8,
        vars: 1024,
        events: 120_000,
        retention: true,
        probe_period: 10,
        violation_at: Some(0.85),
        ..GenConfig::default()
    };
    println!("generating workload: {cfg:?}\n");
    let trace = generate(&cfg);
    let info = MetaInfo::of(&trace);
    println!("{info}");

    let chunk = trace.len() / 10;
    for (name, mut checker) in [
        ("aerodrome", Box::new(OptimizedChecker::new()) as Box<dyn Checker>),
        ("velodrome", Box::new(VelodromeChecker::new()) as Box<dyn Checker>),
    ] {
        println!("── {name} ──");
        let start = Instant::now();
        let mut stopped = None;
        'outer: for (c, events) in trace.events().chunks(chunk).enumerate() {
            let chunk_start = Instant::now();
            for &e in events {
                if let Err(v) = checker.process(e) {
                    stopped = Some(v);
                    break 'outer;
                }
            }
            println!(
                "  {:>3}% processed, chunk took {:>9.3?}",
                (c + 1) * 10,
                chunk_start.elapsed()
            );
        }
        match stopped {
            Some(v) => println!(
                "  ⚡ {} (after {} events, {:.3?} total)\n",
                v.display_with(&trace),
                checker.events_processed(),
                start.elapsed()
            ),
            None => println!("  no violation ({:.3?} total)\n", start.elapsed()),
        }
    }
    println!(
        "note: Velodrome's chunks get slower as its transaction graph grows;\n\
         AeroDrome's stay flat — the linear-time claim of the paper."
    );
}
