//! Quickstart: build a trace, check it, read the report.
//!
//! Run with: `cargo run --example quickstart`

use aerodrome_suite::prelude::*;

fn main() {
    // 1. Record an execution trace. In a real deployment this comes from
    //    an instrumentation front end (the paper uses RoadRunner); here we
    //    script the classic non-atomic read-modify-write.
    let mut tb = TraceBuilder::new();
    let (t1, t2) = (tb.thread("worker-1"), tb.thread("worker-2"));
    let lock = tb.lock("account_lock");
    let balance = tb.var("balance");

    // worker-1's "atomic" withdraw releases the lock between the check
    // and the update…
    tb.begin(t1);
    tb.acquire(t1, lock);
    tb.read(t1, balance);
    tb.release(t1, lock);
    // …so worker-2's deposit slips in between…
    tb.begin(t2);
    tb.acquire(t2, lock);
    tb.read(t2, balance);
    tb.write(t2, balance);
    tb.release(t2, lock);
    tb.end(t2);
    // …and worker-1 commits a stale balance.
    tb.acquire(t1, lock);
    tb.write(t1, balance);
    tb.release(t1, lock);
    tb.end(t1);
    let trace = tb.finish();

    // 2. Sanity-check well-formedness (matched locks/begins, fork/join
    //    ordering).
    let summary = validate(&trace).expect("trace is well-formed");
    assert!(summary.is_closed());

    // 3. Stream the trace through the linear-time checker.
    let mut checker = OptimizedChecker::new();
    match run_checker(&mut checker, &trace) {
        Outcome::Violation(v) => {
            println!("{}", v.display_with(&trace));
            println!(
                "(detected after {} of {} events, online)",
                checker.events_processed(),
                trace.len()
            );
        }
        Outcome::Serializable => println!("trace is conflict serializable ✓"),
    }

    // 4. The graph-based baseline agrees — and can name the cycle.
    let mut velodrome = VelodromeChecker::new();
    let outcome = run_checker(&mut velodrome, &trace);
    assert!(outcome.is_violation());
    if let Some(cycle) = velodrome.witness() {
        println!("velodrome witness: a cycle through {} transactions", cycle.len());
    }

    // 5. Traces round-trip through the RAPID .std text format.
    let text = write_trace(&trace);
    print!("\ntrace log ({} lines):\n{text}", trace.len());
    let reparsed = parse_trace(&text).expect("roundtrip");
    assert_eq!(reparsed.events(), trace.events());
}
