//! Replays the paper's running examples ρ1–ρ4 (Figures 1–4) and prints
//! the AeroDrome clock evolution exactly as Figures 5–7 show it.
//!
//! Run with: `cargo run --example paper_traces`

use aerodrome_suite::prelude::*;
use tracelog::paper_traces::{rho1, rho2, rho3, rho4};

/// Replays `trace` on Algorithm 1, printing one row per event with the
/// clocks that changed — the layout of Figures 5–7.
fn replay(name: &str, trace: &Trace) {
    println!("── {name} ─────────────────────────────────────────────");
    let threads: Vec<ThreadId> = (0..trace.num_threads()).map(ThreadId::from_index).collect();
    let vars: Vec<VarId> = (0..trace.num_vars()).map(VarId::from_index).collect();

    let mut checker = BasicChecker::new();
    let mut prev_thread: Vec<Option<VectorClock>> = vec![None; threads.len()];
    let mut prev_write: Vec<Option<VectorClock>> = vec![None; vars.len()];

    for (i, &event) in trace.iter().enumerate() {
        let result = checker.process(event);
        let mut changes = Vec::new();
        for &t in &threads {
            let now = checker.thread_clock(t);
            if now != prev_thread[t.index()] {
                if let Some(c) = &now {
                    changes.push(format!("C{} = {c}", trace.thread_name(t)));
                }
                prev_thread[t.index()] = now;
            }
        }
        for &x in &vars {
            let now = checker.write_clock(x);
            if now != prev_write[x.index()] {
                if let Some(c) = &now {
                    changes.push(format!("W{} = {c}", trace.var_name(x)));
                }
                prev_write[x.index()] = now;
            }
        }
        println!("e{:<3} {:<18} {}", i + 1, trace.display_event(&event), changes.join("   "));
        if let Err(v) = result {
            println!("     ⚡ {}", v.display_with(trace));
            break;
        }
    }
    println!();
}

fn main() {
    println!("Paper traces ρ1–ρ4 (Figures 1–4) under Algorithm 1:\n");
    replay("ρ1 (Figure 1 — serializable: T3 ⋖ T1 ⋖ T2)", &rho1());
    replay("ρ2 (Figure 2/5 — violation at e6)", &rho2());
    replay("ρ3 (Figure 3/6 — violation at the end event e7)", &rho3());
    replay("ρ4 (Figure 4/7 — future dependency, violation at e11)", &rho4());

    // All three AeroDrome variants and Velodrome agree on the verdicts.
    for (name, trace, violating) in
        [("ρ1", rho1(), false), ("ρ2", rho2(), true), ("ρ3", rho3(), true), ("ρ4", rho4(), true)]
    {
        for outcome in [
            run_checker(&mut BasicChecker::new(), &trace),
            run_checker(&mut ReadOptChecker::new(), &trace),
            run_checker(&mut OptimizedChecker::new(), &trace),
            run_checker(&mut VelodromeChecker::new(), &trace),
        ] {
            assert_eq!(outcome.is_violation(), violating, "{name}");
        }
    }
    println!("verdicts agree across Algorithms 1–3 and Velodrome ✓");
}
