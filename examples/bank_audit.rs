//! Domain scenario: a bank with two-phase-locked transfers and an
//! auditor. With locks, the audit is atomic; reading balances lock-free
//! "for performance" tears the snapshot — a conflict-serializability
//! violation that AeroDrome pinpoints.
//!
//! Run with: `cargo run --example bank_audit`

use aerodrome_suite::prelude::*;
use workloads::scenarios::bank;

fn check(label: &str, trace: &Trace) {
    let mut checker = OptimizedChecker::new();
    print!("{label:<28}");
    match run_checker(&mut checker, trace) {
        Outcome::Serializable => println!("✓ serializable (all {} events)", trace.len()),
        Outcome::Violation(v) => println!("✗ {}", v.display_with(trace)),
    }
}

fn main() {
    println!("bank with 6 accounts, 12 transfers under two-phase locking\n");

    // Per-account locks, transfers acquire both in order: serializable.
    let safe = bank(6, 12, false);
    assert!(validate(&safe).unwrap().is_closed());
    check("transfers only:", &safe);

    // Same transfers plus a lock-free audit: the auditor reads account 0,
    // a transfer commits across accounts 0→1, then the auditor reads the
    // rest — the sum it computes never existed.
    let racy = bank(6, 12, true);
    check("with lock-free audit:", &racy);

    // The fix: take the account locks (or run the audit when quiescent).
    // Here we rebuild the audit with proper locking and watch it pass.
    let mut tb = TraceBuilder::new();
    let teller = tb.thread("teller");
    let auditor = tb.thread("auditor");
    let accounts: Vec<_> = (0..6).map(|i| tb.var(&format!("acct{i}"))).collect();
    let locks: Vec<_> = (0..6).map(|i| tb.lock(&format!("acct{i}_lock"))).collect();
    // One transfer...
    tb.begin(teller);
    tb.acquire(teller, locks[0]);
    tb.acquire(teller, locks[1]);
    tb.read(teller, accounts[0]);
    tb.write(teller, accounts[0]);
    tb.read(teller, accounts[1]);
    tb.write(teller, accounts[1]);
    tb.release(teller, locks[1]);
    tb.release(teller, locks[0]);
    tb.end(teller);
    // ...then an audit that locks ALL accounts (two-phase).
    tb.begin(auditor);
    for l in &locks {
        tb.acquire(auditor, *l);
    }
    for a in &accounts {
        tb.read(auditor, *a);
    }
    for l in locks.iter().rev() {
        tb.release(auditor, *l);
    }
    tb.end(auditor);
    let fixed = tb.finish();
    check("with two-phase audit:", &fixed);
}
