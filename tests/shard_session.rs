//! The resident sharded session contract (the `session_reuse.rs`
//! invariants lifted to the sharded runtime): a warm [`ShardSession`]
//! reused across a *mixed corpus* of traces stays bit-identical to a
//! fresh one-shot sharded check — and, once every trace in the working
//! set has been seen, re-checking the corpus performs **zero** clock
//! heap allocations in every shard.

use aerodrome::shard::Ownership;
use aerodrome_suite::pipeline::shard::{check_sharded, ShardAlgo, ShardConfig, ShardSession};
use workloads::{shapes, GenConfig, GenSource};

fn corpus() -> Vec<(&'static str, GenConfig)> {
    vec![
        ("convoy", GenConfig { seed: 42, threads: 8, events: 40_000, ..GenConfig::default() }),
        (
            "gen",
            GenConfig { seed: 7, threads: 8, vars: 64, events: 30_000, ..GenConfig::default() },
        ),
        ("nesting", GenConfig { seed: 5, threads: 6, events: 20_000, ..GenConfig::default() }),
        (
            "violating",
            GenConfig {
                seed: 11,
                threads: 6,
                events: 15_000,
                violation_at: Some(0.5),
                ..GenConfig::default()
            },
        ),
    ]
}

fn source(name: &str, cfg: &GenConfig) -> Box<dyn tracelog::stream::EventSource> {
    match name {
        "gen" | "violating" => Box::new(GenSource::new(cfg)),
        shape => shapes::source(shape, cfg).expect("known shape"),
    }
}

/// Cross-trace probe: three rounds over the corpus through one session.
/// Every round is compared against a fresh one-shot `check_sharded`
/// (verdict, events, clock_joins), and from the second round onward the
/// per-shard allocation delta must be flat zero — the sharded runtime's
/// steady state, per shard, across *different* traces.
#[test]
fn warm_sharded_session_is_bit_identical_and_allocation_free_across_traces() {
    for algo in [ShardAlgo::Basic, ShardAlgo::ReadOpt] {
        let own = Ownership::round_robin(3);
        let config = ShardConfig::default();
        let mut session = ShardSession::new(algo, own.clone(), config.clone());
        for round in 0..3 {
            for (name, cfg) in &corpus() {
                let label = format!("{}/round {round}/{name}", algo.name());
                let warm = session
                    .check(source(name, cfg).as_mut())
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                let fresh = check_sharded(source(name, cfg).as_mut(), algo, own.clone(), &config)
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                assert_eq!(warm.run.outcome, fresh.run.outcome, "{label}: verdict");
                assert_eq!(warm.run.report.events, fresh.run.report.events, "{label}: events");
                assert_eq!(
                    warm.run.report.clock_joins, fresh.run.report.clock_joins,
                    "{label}: clock joins"
                );
                if round > 0 {
                    for (shard, delta) in session.shard_clock_deltas().iter().enumerate() {
                        assert_eq!(
                            delta.heap_allocs(),
                            0,
                            "{label}: warm shard {shard} must not allocate clock buffers \
                             across traces ({delta:?})"
                        );
                    }
                }
            }
        }
    }
}

/// A trace with *more* threads/vars than anything the session has seen
/// forces a one-time pool growth; the next pass over it is again
/// allocation-free — the working set reaches a new fixpoint instead of
/// thrashing.
#[test]
fn session_pool_reaches_a_new_fixpoint_after_a_wider_trace() {
    let own = Ownership::round_robin(2);
    let mut session = ShardSession::new(ShardAlgo::ReadOpt, own, ShardConfig::default());
    let narrow = GenConfig { seed: 1, threads: 4, events: 10_000, ..GenConfig::default() };
    let wide =
        GenConfig { seed: 2, threads: 16, vars: 128, events: 20_000, ..GenConfig::default() };
    session.check(&mut GenSource::new(&narrow)).expect("narrow");
    session.check(&mut GenSource::new(&wide)).expect("wide, cold");
    session.check(&mut GenSource::new(&wide)).expect("wide, warm");
    for (shard, delta) in session.shard_clock_deltas().iter().enumerate() {
        assert_eq!(
            delta.heap_allocs(),
            0,
            "shard {shard}: second pass over the wide trace must reuse the grown pool ({delta:?})"
        );
    }
}
