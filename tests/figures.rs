//! Figure-level golden tests: every example trace of the paper produces
//! exactly the behaviour shown in Figures 1–7, through the public API.

use aerodrome_suite::prelude::*;
use tracelog::paper_traces::{rho1, rho2, rho3, rho4};

fn assert_clock(actual: VectorClock, expected: &[u32]) {
    for t in 0..expected.len().max(actual.dim()) {
        assert_eq!(
            actual.component(t),
            expected.get(t).copied().unwrap_or(0),
            "component {t} of {actual} (expected {expected:?})"
        );
    }
}

#[test]
fn figure1_rho1_is_serializable_under_every_checker() {
    let trace = rho1();
    assert_eq!(run_checker(&mut BasicChecker::new(), &trace), Outcome::Serializable);
    assert_eq!(run_checker(&mut ReadOptChecker::new(), &trace), Outcome::Serializable);
    assert_eq!(run_checker(&mut OptimizedChecker::new(), &trace), Outcome::Serializable);
    assert_eq!(run_checker(&mut VelodromeChecker::new(), &trace), Outcome::Serializable);
}

#[test]
fn figure5_clock_table_for_rho2() {
    // Figure 5 row by row: the clocks after each event of ρ2.
    let trace = rho2();
    let mut c = BasicChecker::new();
    let t1 = ThreadId::from_index(0);
    let t2 = ThreadId::from_index(1);
    let x = VarId::from_index(0);
    let y = VarId::from_index(1);

    c.process(trace[0]).unwrap();
    assert_clock(c.thread_clock(t1).unwrap(), &[2, 0]);
    c.process(trace[1]).unwrap();
    assert_clock(c.thread_clock(t2).unwrap(), &[0, 2]);
    c.process(trace[2]).unwrap();
    assert_clock(c.write_clock(x).unwrap(), &[2, 0]);
    c.process(trace[3]).unwrap();
    assert_clock(c.thread_clock(t2).unwrap(), &[2, 2]);
    c.process(trace[4]).unwrap();
    assert_clock(c.write_clock(y).unwrap(), &[2, 2]);
    // e6: violation with C⊲_{t1} ⊑ W_y.
    let v = c.process(trace[5]).unwrap_err();
    assert_eq!(v.event.index(), 5);
    assert_eq!(v.thread, t1);
    assert!(matches!(v.kind, ViolationKind::AtRead(var) if var == y));
    assert!(c.begin_clock(t1).unwrap().leq(&c.write_clock(y).unwrap()));
}

#[test]
fn figure6_rho3_detects_at_end_event_with_begin_clock_check() {
    let trace = rho3();
    let mut c = BasicChecker::new();
    for &e in trace.events().iter().take(6) {
        c.process(e).unwrap();
    }
    // After e5/e6 the cross-reads completed without violation (Figure 6):
    let t1 = ThreadId::from_index(0);
    let t2 = ThreadId::from_index(1);
    assert_clock(c.thread_clock(t1).unwrap(), &[2, 2]);
    assert_clock(c.thread_clock(t2).unwrap(), &[2, 2]);
    // e7 (⊳ of t1): C⊲_{t2} ⊑ C_{t1} closes the cycle.
    let v = c.process(trace[6]).unwrap_err();
    assert_eq!(v.event.index(), 6);
    assert_eq!(v.thread, t2);
    assert!(matches!(v.kind, ViolationKind::AtEnd { ending } if ending == t1));
}

#[test]
fn figure7_rho4_future_dependency_via_end_event_pushes() {
    let trace = rho4();
    let mut c = BasicChecker::new();
    let y = VarId::from_index(1);
    let z = VarId::from_index(2);
    for &e in trace.events().iter().take(6) {
        c.process(e).unwrap();
    }
    // e6 (⊳ of t2) pushes C_{t2} into W_y: ⟨2,2,0⟩ (line 44 of Alg. 1).
    assert_clock(c.write_clock(y).unwrap(), &[2, 2, 0]);
    for &e in trace.events().iter().skip(6).take(4) {
        c.process(e).unwrap();
    }
    assert_clock(c.write_clock(z).unwrap(), &[2, 2, 2]);
    // e11: C⊲_{t1} ⊑ W_z.
    let v = c.process(trace[10]).unwrap_err();
    assert_eq!(v.event.index(), 10);
    assert_eq!(v.thread.index(), 0);
}

#[test]
fn all_checkers_agree_on_all_figure_traces() {
    for (name, trace, violating) in [
        ("rho1", rho1(), false),
        ("rho2", rho2(), true),
        ("rho3", rho3(), true),
        ("rho4", rho4(), true),
    ] {
        let verdicts = [
            run_checker(&mut BasicChecker::new(), &trace).is_violation(),
            run_checker(&mut ReadOptChecker::new(), &trace).is_violation(),
            run_checker(&mut OptimizedChecker::new(), &trace).is_violation(),
            run_checker(&mut VelodromeChecker::new(), &trace).is_violation(),
        ];
        assert_eq!(verdicts, [violating; 4], "{name}");
    }
}

#[test]
fn example2_rho1_dependency_discovered_after_transactions_complete() {
    // Example 2 of the paper: T3 ⋖ T1 ⋖ T2 in ρ1, but the T3 → T1 edge is
    // only discovered at e9, after both T2 and T3 completed. The trace is
    // serializable nonetheless — and must stay so through every prefix.
    let trace = rho1();
    for cut in 0..=trace.len() {
        let mut c = BasicChecker::new();
        for &e in trace.events().iter().take(cut) {
            assert!(c.process(e).is_ok(), "prefix of length {cut}");
        }
    }
}
