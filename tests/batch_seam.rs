//! Differential tests for the batch seam: `next_batch` must be
//! indistinguishable from per-event `next_event` on every source —
//! byte-identical event sequences, identical name tables, and identical
//! error positions (parse-error line numbers included) — across
//! `StdReader`, `GenSource` and all workload shapes, at awkward batch
//! sizes.

use aerodrome_suite::prelude::*;
use proptest::prelude::*;
use tracelog::stream::{EventBatch, Validated};
use workloads::shapes;

/// Drains a source per-event.
fn collect_per_event(source: &mut dyn EventSource) -> Vec<Event> {
    let mut events = Vec::new();
    while let Some(e) = source.next_event().expect("source cannot fail") {
        events.push(e);
    }
    events
}

/// Drains a source through batches of the given target size.
fn collect_batched(source: &mut dyn EventSource, target: usize) -> Vec<Event> {
    let mut batch = EventBatch::with_target(target);
    let mut events = Vec::new();
    while source.next_batch(&mut batch).expect("source cannot fail") > 0 {
        events.extend_from_slice(batch.events());
    }
    events
}

#[test]
fn generator_batches_equal_per_event_streaming() {
    for cfg in [
        GenConfig { events: 4_000, ..GenConfig::default() },
        GenConfig { events: 4_000, violation_at: Some(0.4), ..GenConfig::default() },
        GenConfig { events: 6_000, retention: true, probe_period: 50, ..GenConfig::default() },
        GenConfig { events: 700, threads: 1, ..GenConfig::default() },
    ] {
        for target in [1, 7, 4096] {
            let per_event = collect_per_event(&mut GenSource::new(&cfg));
            let batched = collect_batched(&mut GenSource::new(&cfg), target);
            assert_eq!(per_event, batched, "target {target}");
        }
    }
}

#[test]
fn shape_batches_equal_per_event_streaming() {
    for name in shapes::SHAPE_NAMES {
        let cfg = GenConfig {
            events: 3_000,
            threads: if name == "fanout" { 17 } else { 5 },
            ..GenConfig::default()
        };
        for target in [1, 5, 113, 4096] {
            let mut a = shapes::source(name, &cfg).expect("known shape");
            let mut b = shapes::source(name, &cfg).expect("known shape");
            let per_event = collect_per_event(a.as_mut());
            let batched = collect_batched(b.as_mut(), target);
            assert_eq!(per_event, batched, "{name} target {target}");
            assert!(per_event.len() >= 3_000, "{name}");
        }
    }
}

/// A malformed line must surface with the same line number and after
/// the same event prefix in both iteration modes.
#[test]
fn parse_errors_are_identical_across_modes() {
    let trace = generate(&GenConfig { events: 600, ..GenConfig::default() });
    let mut text = write_trace(&trace);
    let insert_at = text.lines().take(123).map(|l| l.len() + 1).sum::<usize>();
    text.insert_str(insert_at, "t1|frobnicate|999\n");

    let mut per_event = StdReader::new(text.as_bytes());
    let mut events_a = Vec::new();
    let err_a = loop {
        match per_event.next_event() {
            Ok(Some(e)) => events_a.push(e),
            Ok(None) => panic!("must hit the malformed line"),
            Err(e) => break e,
        }
    };

    let mut batched = StdReader::new(text.as_bytes());
    let mut batch = EventBatch::with_target(64);
    let mut events_b = Vec::new();
    let err_b = loop {
        match batched.next_batch(&mut batch) {
            Ok(0) => panic!("must hit the malformed line"),
            Ok(_) => events_b.extend_from_slice(batch.events()),
            Err(e) => {
                // On error the batch holds the valid prefix.
                events_b.extend_from_slice(batch.events());
                break e;
            }
        }
    };

    assert_eq!(events_a, events_b);
    match (err_a, err_b) {
        (SourceError::Parse(a), SourceError::Parse(b)) => {
            assert_eq!(a.line, b.line, "error line numbers must match");
            assert_eq!(a.line, 124);
        }
        other => panic!("unexpected error pair {other:?}"),
    }
}

/// The validating stage rejects the same event in both modes, and the
/// reader can still attribute that event to its input line even though
/// the batch read ahead.
#[test]
fn validation_errors_are_identical_across_modes() {
    let log = "t1|begin|0\nt1|w(x)|1\nt2|r(x)|2\nt1|rel(m)|3\nt1|end|4\n";

    let mut per_event = Validated::new(StdReader::new(log.as_bytes()));
    let mut events_a = Vec::new();
    let err_a = loop {
        match per_event.next_event() {
            Ok(Some(e)) => events_a.push(e),
            Ok(None) => panic!("must hit the ill-formed event"),
            Err(e) => break e,
        }
    };

    let mut inner = StdReader::new(log.as_bytes());
    let mut batched = Validated::new(&mut inner);
    let mut batch = EventBatch::new();
    let err_b = match batched.next_batch(&mut batch) {
        Err(e) => e,
        other => panic!("expected the ill-formed event to fail the batch, got {other:?}"),
    };
    assert_eq!(events_a.as_slice(), batch.events(), "well-formed prefix must match");
    let (SourceError::Malformed(a), SourceError::Malformed(b)) = (err_a, err_b) else {
        panic!("expected malformed errors")
    };
    assert_eq!(a, b);
    assert_eq!(inner.line_of(b.event()), Some(4), "event attributed to its own line");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random workloads and batch sizes: the generator, the `.std`
    /// round-trip through `StdReader`, and every shape agree between
    /// modes; `StdReader` name tables match too.
    #[test]
    fn batched_iteration_is_equivalent_on_random_workloads(
        seed in 0u64..1_000,
        threads in 1usize..8,
        events in 200usize..2_000,
        target in 1usize..600,
        shape in 0usize..4,
    ) {
        let cfg = GenConfig { seed, threads, events, ..GenConfig::default() };
        let (per_event, batched) = match shape {
            0 => (
                collect_per_event(&mut GenSource::new(&cfg)),
                collect_batched(&mut GenSource::new(&cfg), target),
            ),
            _ => {
                let name = shapes::SHAPE_NAMES[shape - 1];
                let mut a = shapes::source(name, &cfg).expect("known shape");
                let mut b = shapes::source(name, &cfg).expect("known shape");
                (collect_per_event(a.as_mut()), collect_batched(b.as_mut(), target))
            }
        };
        prop_assert_eq!(&per_event, &batched);

        // Round-trip the events through the text format and compare the
        // reader's two modes, names included.
        let mut text = Vec::new();
        let mut replay = GenSource::new(&cfg); // names only matter for mode parity
        let _ = tracelog::stream::copy_events(&mut replay, &mut text).unwrap();
        let mut a = StdReader::new(text.as_slice());
        let mut b = StdReader::new(text.as_slice());
        let ea = collect_per_event(&mut a);
        let eb = collect_batched(&mut b, target);
        prop_assert_eq!(ea, eb);
        prop_assert_eq!(a.names().threads, b.names().threads);
        prop_assert_eq!(a.names().locks, b.names().locks);
        prop_assert_eq!(a.names().vars, b.names().vars);
    }
}
