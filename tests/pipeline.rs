//! Differential tests for the streaming pipeline: every verdict produced
//! through `Pipeline` (source → validator → checker) must equal the
//! batch `run_checker` verdict on the same events — on the paper traces,
//! on every benchmark profile, on the extra shapes, and on random
//! generator configurations.

use aerodrome_suite::pipeline::Pipeline;
use aerodrome_suite::prelude::*;
use proptest::prelude::*;
use tracelog::paper_traces;
use workloads::shapes;

/// All checkers under one name each, fresh per call.
fn checkers() -> Vec<(&'static str, Box<dyn Checker>)> {
    vec![
        ("basic", Box::new(BasicChecker::new())),
        ("readopt", Box::new(ReadOptChecker::new())),
        ("optimized", Box::new(OptimizedChecker::new())),
        ("velodrome", Box::new(VelodromeChecker::new())),
    ]
}

fn pipeline_outcome(trace: &Trace, checker: &mut dyn Checker) -> Outcome {
    Pipeline::new(trace.stream()).run(checker).expect("well-formed in-memory trace").outcome
}

#[test]
fn pipeline_matches_run_checker_on_every_paper_trace() {
    for (name, trace) in [
        ("rho1", paper_traces::rho1()),
        ("rho2", paper_traces::rho2()),
        ("rho3", paper_traces::rho3()),
        ("rho4", paper_traces::rho4()),
    ] {
        for (cname, mut checker) in checkers() {
            let batch = {
                let mut reference: Box<dyn Checker> = match cname {
                    "basic" => Box::new(BasicChecker::new()),
                    "readopt" => Box::new(ReadOptChecker::new()),
                    "optimized" => Box::new(OptimizedChecker::new()),
                    _ => Box::new(VelodromeChecker::new()),
                };
                run_checker(reference.as_mut(), &trace)
            };
            let streamed = pipeline_outcome(&trace, checker.as_mut());
            assert_eq!(streamed, batch, "{name}/{cname}");
        }
    }
}

#[test]
fn pipeline_matches_run_checker_on_every_profile() {
    // Reduced scale keeps the debug-build test fast; the bench harness
    // exercises full scale.
    for mut profile in workloads::table1().into_iter().chain(workloads::table2()) {
        profile.cfg.events = profile.cfg.events.min(4_000);
        let trace = generate(&profile.cfg);
        let batch = run_checker(&mut OptimizedChecker::new(), &trace);
        let report = Pipeline::new(trace.stream())
            .run(&mut OptimizedChecker::new())
            .unwrap_or_else(|e| panic!("{}: {e}", profile.name));
        assert_eq!(report.outcome, batch, "{}", profile.name);
        if !report.outcome.is_violation() {
            assert_eq!(report.events, trace.len() as u64, "{}", profile.name);
            assert!(report.summary.unwrap().is_closed(), "{}", profile.name);
        }
    }
}

#[test]
fn generator_source_streams_the_exact_generate_events() {
    for cfg in [
        GenConfig { events: 3_000, ..GenConfig::default() },
        GenConfig { events: 3_000, violation_at: Some(0.4), ..GenConfig::default() },
        GenConfig { events: 5_000, retention: true, probe_period: 50, ..GenConfig::default() },
        GenConfig { events: 500, threads: 1, ..GenConfig::default() },
    ] {
        let trace = generate(&cfg);
        let mut source = GenSource::new(&cfg);
        let mut streamed = Vec::new();
        while let Some(e) = source.next_event().unwrap() {
            streamed.push(e);
        }
        assert_eq!(streamed.as_slice(), trace.events());
        assert_eq!(source.names().threads.len(), trace.num_threads());
        assert_eq!(source.names().vars.len(), trace.num_vars());
    }
}

#[test]
fn shapes_are_serializable_under_every_checker() {
    for name in shapes::SHAPE_NAMES {
        let cfg = GenConfig {
            events: 3_000,
            threads: if name == "fanout" { 17 } else { 5 },
            ..GenConfig::default()
        };
        let trace = shapes::collect(name, &cfg).expect("known shape");
        assert!(validate(&trace).unwrap().is_closed(), "{name}");
        for (cname, mut checker) in checkers() {
            let outcome = pipeline_outcome(&trace, checker.as_mut());
            assert!(!outcome.is_violation(), "{name}/{cname} must be serializable");
        }
    }
}

#[test]
fn pipeline_twophase_agrees_with_velodrome_on_profiles() {
    for name in ["hedc", "philo"] {
        let profile = workloads::table1().into_iter().find(|p| p.name == name).unwrap();
        let cfg = GenConfig { events: profile.cfg.events.min(3_000), ..profile.cfg };
        let trace = generate(&cfg);
        let config = velodrome::Config::default();
        let run = Pipeline::new(trace.stream()).run_twophase(&config).unwrap();
        let single = run_checker(&mut VelodromeChecker::new(), &trace);
        assert_eq!(run.report.outcome.is_violation(), single.is_violation(), "{name}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random generator configurations: the streamed pipeline verdict
    /// (with validation on) equals the in-memory `run_checker` verdict.
    #[test]
    fn pipeline_equals_run_checker_on_random_workloads(
        seed in 0u64..1_000,
        threads in 1usize..7,
        inject in any::<bool>(),
        violation_tenths in 1u32..9,
        retention in any::<bool>(),
    ) {
        let violation_frac = f64::from(violation_tenths) / 10.0;
        let cfg = GenConfig {
            seed,
            threads,
            events: 1_200,
            vars: 64,
            locks: 2,
            retention,
            probe_period: 40,
            violation_at: inject.then_some(violation_frac),
            ..GenConfig::default()
        };
        let trace = generate(&cfg);
        let batch = run_checker(&mut OptimizedChecker::new(), &trace);
        // Stream straight from the generator, not from the trace.
        let mut pipeline = Pipeline::new(GenSource::new(&cfg));
        let report = pipeline.run(&mut OptimizedChecker::new()).expect("generated traces are well-formed");
        prop_assert_eq!(report.outcome, batch);
    }
}

/// The acceptance check of the streaming redesign: a ≥5M-event `.std`
/// log analysed end to end through the constant-memory path, verdict
/// identical to the in-memory path. Expensive in debug builds, so it is
/// ignored by default:
///
/// ```console
/// cargo test --release --test pipeline -- --ignored
/// ```
#[test]
#[ignore = "multi-minute in debug builds; run with --release -- --ignored"]
fn five_million_event_std_log_streams_through_the_pipeline() {
    use std::io::BufReader;
    use tracelog::stream::copy_events;

    let cfg = GenConfig { events: 5_000_000, vars: 4_096, ..GenConfig::default() };
    let dir = std::env::temp_dir().join("aerodrome-suite-5m");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("5m.std");

    // Generator → disk, streaming.
    let file = std::fs::File::create(&path).unwrap();
    let mut out = std::io::BufWriter::new(file);
    let written = copy_events(&mut GenSource::new(&cfg), &mut out).unwrap();
    drop(out);
    assert!(written >= 5_000_000);

    // Disk → checker, streaming (validator on), no Trace materialised.
    let reader = StdReader::new(BufReader::new(std::fs::File::open(&path).unwrap()));
    let mut pipeline = Pipeline::new(reader);
    let report = pipeline.run(&mut OptimizedChecker::new()).unwrap();
    assert_eq!(report.events, written);
    assert!(report.summary.unwrap().is_closed());

    // Same verdict as the in-memory path over the same events.
    let batch = run_checker(&mut OptimizedChecker::new(), &generate(&cfg));
    assert_eq!(report.outcome, batch);
    let _ = std::fs::remove_file(&path);
}
