//! Small-scale checks of the evaluation's qualitative claims (§5.3),
//! using algorithmic metrics rather than brittle wall-clock thresholds
//! wherever possible.

use aerodrome_suite::prelude::*;
use velodrome::VelodromeChecker;

fn retention_cfg(events: usize) -> GenConfig {
    GenConfig {
        seed: 99,
        threads: 8,
        locks: 4,
        vars: 256,
        events,
        retention: true,
        probe_period: 4,
        violation_at: None,
        ..GenConfig::default()
    }
}

/// §5.3: with realistic specs, the number of live transactions in
/// Velodrome's graph grows with the trace; with naive/local workloads GC
/// keeps it constant.
#[test]
fn velodrome_graph_growth_depends_on_spec_style() {
    let mut peaks = Vec::new();
    for events in [5_000usize, 10_000, 20_000] {
        let trace = generate(&retention_cfg(events));
        let mut c = VelodromeChecker::new();
        assert!(!run_checker(&mut c, &trace).is_violation());
        peaks.push(c.stats().peak_live_nodes);
    }
    assert!(peaks[2] > peaks[0] * 2, "graph must grow ~linearly under retention: {peaks:?}");

    let quiet = generate(&GenConfig { retention: false, ..retention_cfg(20_000) });
    let mut c = VelodromeChecker::new();
    assert!(!run_checker(&mut c, &quiet).is_violation());
    assert!(
        c.stats().peak_live_nodes < 100,
        "GC keeps the graph tiny without retention: {:?}",
        c.stats()
    );
}

/// The cubic-vs-linear work claim, measured in DFS node visits (the
/// dominant cost in Velodrome): doubling the trace should more than
/// double the visit count under retention.
#[test]
fn velodrome_cycle_check_work_grows_superlinearly() {
    let mut visits = Vec::new();
    for events in [10_000usize, 20_000, 40_000] {
        let trace = generate(&retention_cfg(events));
        let mut c = VelodromeChecker::new();
        assert!(!run_checker(&mut c, &trace).is_violation());
        visits.push(c.stats().dfs_visits);
    }
    // Linear growth would give visits[2] ≈ 4 × visits[0]; quadratic ≈ 16×.
    assert!(visits[2] > visits[0] * 8, "cycle-check work must grow super-linearly: {visits:?}");
}

/// AeroDrome's work metric (clock joins, each O(|Thr|)) is bounded per
/// event — the linear-time theorem measured directly, with no wall-clock
/// noise.
#[test]
fn aerodrome_clock_joins_grow_linearly() {
    let mut per_event = Vec::new();
    for events in [10_000usize, 20_000, 40_000] {
        let trace = generate(&retention_cfg(events));
        let mut c = OptimizedChecker::new();
        assert!(!run_checker(&mut c, &trace).is_violation());
        per_event.push(c.clock_joins() as f64 / trace.len() as f64);
    }
    // The per-event join rate must be flat (within 20%) across a 4×
    // increase in trace length.
    let (min, max) = (
        per_event.iter().cloned().fold(f64::MAX, f64::min),
        per_event.iter().cloned().fold(0.0, f64::max),
    );
    assert!(max / min < 1.2, "per-event clock joins must stay flat: {per_event:?}");
}

/// AeroDrome processes the identical traces with flat per-event cost:
/// its state never exceeds O(threads · (vars + locks)) clocks, so we
/// check the end-to-end wall time stays within a generous linear factor.
#[test]
fn aerodrome_total_time_stays_near_linear() {
    let small = generate(&retention_cfg(10_000));
    let large = generate(&retention_cfg(40_000));
    // Warm up (allocator, caches).
    let _ = run_checker(&mut OptimizedChecker::new(), &small);

    let t0 = std::time::Instant::now();
    let _ = run_checker(&mut OptimizedChecker::new(), &small);
    let small_t = t0.elapsed();
    let t0 = std::time::Instant::now();
    let _ = run_checker(&mut OptimizedChecker::new(), &large);
    let large_t = t0.elapsed();

    // 4× the events should cost well under 16× the time even in debug
    // builds with timing noise.
    assert!(
        large_t < small_t * 16 + std::time::Duration::from_millis(50),
        "aerodrome scaling looks super-linear: {small_t:?} → {large_t:?}"
    );
}

/// End-to-end: on a retention workload both checkers find the same
/// violation, and AeroDrome needs far fewer "work units" (clock ops are
/// bounded per event, so events processed is its work measure).
#[test]
fn detection_points_are_consistent_under_retention() {
    let cfg = GenConfig { violation_at: Some(0.7), ..retention_cfg(20_000) };
    let trace = generate(&cfg);
    let mut aero = OptimizedChecker::new();
    let mut velo = VelodromeChecker::new();
    let a = run_checker(&mut aero, &trace);
    let v = run_checker(&mut velo, &trace);
    assert!(a.is_violation() && v.is_violation());
    // Both stop in the injection neighbourhood (±2% of the trace).
    let a_at = a.violation().unwrap().event.index() as f64 / trace.len() as f64;
    let v_at = v.violation().unwrap().event.index() as f64 / trace.len() as f64;
    assert!((a_at - v_at).abs() < 0.02, "a={a_at:.3} v={v_at:.3}");
}
