//! Differential spec of the per-trace sharded runtime: for every input
//! and every partition, `check_sharded` must be **bit-identical** to
//! the sequential engine — same verdict, same first-violation
//! attribution (event, thread, kind — [`aerodrome::Violation`]'s
//! `PartialEq` covers all three), same `events` counter, same
//! `clock_joins` counter. Both shardable algorithms (Basic, ReadOpt),
//! shard counts 1/2/4, paper traces, every workload shape, the sealed
//! adversarial corpus, and proptest-jittered random partitions and
//! runtime configurations.

use aerodrome::basic::BasicChecker;
use aerodrome::readopt::ReadOptChecker;
use aerodrome::shard::Ownership;
use aerodrome::{run_checker, Checker, CheckerReport, Outcome};
use aerodrome_suite::pipeline::affinity::profile_source;
use aerodrome_suite::pipeline::shard::{check_sharded, ShardAlgo, ShardConfig};
use proptest::prelude::*;
use tracelog::Trace;
use workloads::{generate, GenConfig};

const ALGOS: [ShardAlgo; 2] = [ShardAlgo::Basic, ShardAlgo::ReadOpt];

fn baseline(algo: ShardAlgo, trace: &Trace) -> (Outcome, CheckerReport) {
    match algo {
        ShardAlgo::Basic => {
            let mut c = BasicChecker::new();
            (run_checker(&mut c, trace), c.report())
        }
        ShardAlgo::ReadOpt => {
            let mut c = ReadOptChecker::new();
            (run_checker(&mut c, trace), c.report())
        }
    }
}

/// The bit-identity assertion: verdict (including the full violation),
/// event counter, join counter — per algorithm, for one partition.
fn assert_sharded_matches(name: &str, trace: &Trace, own: &Ownership, config: &ShardConfig) {
    for algo in ALGOS {
        let (outcome, base) = baseline(algo, trace);
        let got = check_sharded(&mut trace.stream(), algo, own.clone(), config)
            .unwrap_or_else(|e| panic!("{name}/{}: well-formed input failed: {e}", algo.name()));
        assert_eq!(
            got.run.outcome,
            outcome,
            "{name}/{}: verdict over {} shards",
            algo.name(),
            own.shards()
        );
        assert_eq!(
            got.run.report.events,
            base.events,
            "{name}/{}: events over {} shards",
            algo.name(),
            own.shards()
        );
        assert_eq!(
            got.run.report.clock_joins,
            base.clock_joins,
            "{name}/{}: clock_joins over {} shards",
            algo.name(),
            own.shards()
        );
    }
}

/// The affinity-derived ownership for `trace`, exactly as
/// `--partition auto` would build it.
fn auto_partition(trace: &Trace, shards: usize) -> Ownership {
    let profile = profile_source(&mut trace.stream(), 512).expect("well-formed input profiles");
    profile.partition(shards).ownership()
}

fn assert_all_counts(name: &str, trace: &Trace, config: &ShardConfig) {
    for shards in [1usize, 2, 4] {
        assert_sharded_matches(name, trace, &Ownership::round_robin(shards), config);
        // The locality-minimizing plan must be just as invisible to the
        // verdict as blind round-robin.
        assert_sharded_matches(
            &format!("{name}/auto"),
            trace,
            &auto_partition(trace, shards),
            config,
        );
    }
}

#[test]
fn paper_traces_are_bit_identical_at_every_shard_count() {
    use tracelog::paper_traces::{rho1, rho2, rho3, rho4};
    let config = ShardConfig::default();
    for (name, trace) in [("rho1", rho1()), ("rho2", rho2()), ("rho3", rho3()), ("rho4", rho4())] {
        assert_all_counts(name, &trace, &config);
    }
}

#[test]
fn workload_shapes_are_bit_identical_at_every_shard_count() {
    // Small batches so flush boundaries land mid-trace even on the
    // 5k-event shapes.
    let config = ShardConfig::default().batch_events(256);
    for name in workloads::shapes::SHAPE_NAMES {
        for threads in [2usize, 5] {
            let cfg = GenConfig { seed: 23, threads, events: 5_000, ..GenConfig::default() };
            let trace = workloads::shapes::collect(name, &cfg).expect("known shape");
            assert_all_counts(name, &trace, &config);
        }
    }
}

/// The sealed adversarial corpus (schedule exploration + fuzzing
/// reproducers) at shards 1/2/4: includes minimised violations and
/// deadlock prefixes — open-transaction tails included.
#[test]
fn adversarial_corpus_is_bit_identical_at_every_shard_count() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/adversarial");
    let config = ShardConfig::default().batch_events(64);
    let mut checked = 0usize;
    for entry in std::fs::read_dir(dir).expect("fixture corpus") {
        let path = entry.expect("fixture entry").path();
        if path.extension().is_none_or(|e| e != "std") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("fixture read");
        let trace = tracelog::parse_trace(&text).expect("fixture parses");
        assert_all_counts(&path.display().to_string(), &trace, &config);
        checked += 1;
    }
    assert!(checked >= 9, "adversarial corpus went missing: {checked} fixtures");
}

#[test]
fn generated_violating_workloads_attribute_identically() {
    let config = ShardConfig::default().batch_events(128).channel_batches(1);
    for seed in 0..3u64 {
        let cfg = GenConfig {
            seed,
            threads: 6,
            events: 4_000,
            vars: 48,
            locks: 3,
            violation_at: Some(0.4),
            ..GenConfig::default()
        };
        let trace = generate(&cfg);
        assert_all_counts(&format!("violating seed={seed}"), &trace, &config);
    }
}

/// Derives a pseudo-random ownership partition: every thread/lock/var
/// index pinned to an arbitrary shard (not just round-robin), xorshift
/// off the proptest-drawn seed.
fn random_partition(shards: usize, seed: u64) -> Ownership {
    let mut own = Ownership::round_robin(shards);
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state as usize % shards
    };
    for i in 0..64 {
        own.pin_thread(i, next());
        own.pin_lock(i, next());
        own.pin_var(i, next());
    }
    own
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random workloads under random partitions and random runtime
    /// configs: sharded ≡ single-shard, bit for bit.
    #[test]
    fn random_partitions_and_configs_are_bit_identical(
        seed in 0u64..1_000,
        shards in 1usize..5,
        partition_seed in any::<u64>(),
        batch_pow in 4u32..9,      // batches of 16..256 events
        depth in 1usize..4,
        threads in 2usize..7,
        // 0 = no injected violation; 1..=100 → inject at that fraction.
        violation_pct in 0u32..101,
    ) {
        let cfg = GenConfig {
            seed,
            threads,
            locks: 2,
            vars: 32,
            events: 1_500,
            probe_period: 30,
            violation_at: (violation_pct > 0).then(|| f64::from(violation_pct - 1) / 100.0),
            ..GenConfig::default()
        };
        let trace = generate(&cfg);
        let own = random_partition(shards, partition_seed);
        let config = ShardConfig::default()
            .batch_events(1 << batch_pow)
            .channel_batches(depth);
        assert_sharded_matches(
            &format!("seed={seed} shards={shards} part={partition_seed:#x}"),
            &trace,
            &own,
            &config,
        );
        // And the affinity-derived plan under the same jittered runtime.
        assert_sharded_matches(
            &format!("seed={seed} shards={shards} auto"),
            &trace,
            &auto_partition(&trace, shards),
            &config,
        );
    }
}

/// Metamorphic check of the epoch-memo layer: suppressing resends of
/// unchanged clocks changes the message counters and NOTHING else.
#[test]
fn memo_suppression_changes_stats_but_not_outcomes() {
    let mut suppressed_somewhere = false;
    for name in workloads::shapes::SHAPE_NAMES {
        let cfg = GenConfig { seed: 41, threads: 5, events: 5_000, ..GenConfig::default() };
        let trace = workloads::shapes::collect(name, &cfg).expect("known shape");
        // Round-robin at 2 shards maximises cross-shard dialogue, the
        // memo layer's whole habitat.
        let own = Ownership::round_robin(2);
        for algo in ALGOS {
            let run = |memo: bool| {
                check_sharded(
                    &mut trace.stream(),
                    algo,
                    own.clone(),
                    &ShardConfig::default().batch_events(256).memo(memo),
                )
                .expect("well-formed input")
            };
            let with_memo = run(true);
            let without = run(false);
            assert_eq!(with_memo.run.outcome, without.run.outcome, "{name}/{}", algo.name());
            // Observable counters only: the clock-pool allocator stats
            // legitimately shrink when fewer messages materialise.
            assert_eq!(
                with_memo.run.report.events,
                without.run.report.events,
                "{name}/{}",
                algo.name()
            );
            assert_eq!(
                with_memo.run.report.clock_joins,
                without.run.report.clock_joins,
                "{name}/{}",
                algo.name()
            );
            assert_eq!(with_memo.events, without.events, "{name}/{}", algo.name());
            // Routing is partition-determined, memo-independent.
            assert_eq!(
                with_memo.stats.cross_events,
                without.stats.cross_events,
                "{name}/{}",
                algo.name()
            );
            assert_eq!(without.stats.memo_hits, 0, "{name}/{}", algo.name());
            assert!(
                with_memo.stats.cross_msgs <= without.stats.cross_msgs,
                "{name}/{}: memo must never add messages",
                algo.name()
            );
            suppressed_somewhere |= with_memo.stats.memo_hits > 0;
        }
    }
    assert!(suppressed_somewhere, "no shape ever hit the memo — layer inert?");
}
