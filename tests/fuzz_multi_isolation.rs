//! Error isolation in the resident multi-trace runtime under
//! adversarial input: ill-formed traces produced by the mutation fuzzer
//! must fail *individually* — with line-attributed errors — while the
//! valid traces around them keep their exact verdicts, and the resident
//! sessions stay reusable (warm, allocation-free) afterwards.

use aerodrome_suite::pipeline::multi::{check_corpus, MultiConfig};
use aerodrome_suite::pipeline::par::standard_checkers;
use aerodrome_suite::prelude::*;
use scenarios::Mutator;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fuzz-multi-isolation");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A closed, well-formed working-set trace with some lock traffic.
fn seed_trace() -> Trace {
    let cfg = GenConfig { events: 8_000, threads: 6, vars: 24, seed: 13, ..GenConfig::default() };
    let (trace, _) = aerodrome_suite::Pipeline::new(GenSource::new(&cfg)).collect().unwrap();
    trace
}

/// Fuzzes `trace` until the mutator produces an *ill-formed* mutant.
fn ill_formed_mutant(trace: &Trace, seed: u64) -> Trace {
    let mut mutator = Mutator::new(seed);
    for _ in 0..10_000 {
        if let Some(mutant) = mutator.mutate(trace) {
            if !mutant.valid {
                return mutant.trace;
            }
        }
    }
    panic!("mutator never produced an ill-formed mutant");
}

/// The corpus: [good, bad, good, good] — the same valid trace scheduled
/// around a fuzzed ill-formed one, so the run exercises both error
/// attribution and session reuse across the failure.
#[test]
fn ill_formed_mutants_fail_alone_and_sessions_stay_warm() {
    let good = seed_trace();
    let bad = ill_formed_mutant(&good, 99);

    let good_path = tmp("good.std");
    let bad_path = tmp("bad.std");
    std::fs::write(&good_path, write_trace(&good)).unwrap();
    std::fs::write(&bad_path, write_trace(&bad)).unwrap();

    let expected: Vec<Outcome> = standard_checkers()
        .into_iter()
        .map(|mut c| {
            let mut pipeline = aerodrome_suite::Pipeline::new(good.stream());
            pipeline.run(c.as_mut()).unwrap().outcome
        })
        .collect();

    let paths = vec![good_path.clone(), bad_path.clone(), good_path.clone(), good_path.clone()];
    for jobs in [1, 2] {
        let report = check_corpus(&paths, standard_checkers, &MultiConfig::default().jobs(jobs));
        assert_eq!(report.workers, jobs.min(paths.len()));
        assert_eq!(report.traces.len(), 4);

        // The fuzzed trace fails with a line-attributed error…
        let failed = &report.traces[1];
        let error = failed.error.as_ref().expect("ill-formed mutant must error");
        assert!(error.contains("not well-formed"), "{error}");
        assert!(error.contains("line "), "error lacks line attribution: {error}");
        assert!(error.contains(&bad_path.display().to_string()), "{error}");

        // …while every occurrence of the valid trace is untouched by it.
        for index in [0, 2, 3] {
            let run = &report.traces[index];
            assert!(run.error.is_none(), "jobs={jobs} trace {index}: {:?}", run.error);
            assert_eq!(run.events, good.len() as u64, "jobs={jobs} trace {index}");
            let verdicts: Vec<&Outcome> = run.runs.iter().map(|r| &r.outcome).collect();
            assert_eq!(
                verdicts,
                expected.iter().collect::<Vec<_>>(),
                "jobs={jobs} trace {index}: verdicts must match a fresh panel"
            );
        }
    }

    // Warm-session probe: on one worker the corpus is processed in
    // order, so by its third occurrence the valid trace runs entirely
    // out of pooled clock storage — zero heap allocations — even though
    // an ill-formed trace was ingested (and rejected) in between.
    let report = check_corpus(&paths, standard_checkers, &MultiConfig::default().jobs(1));
    for run in &report.traces[3].runs {
        assert_eq!(
            run.report.clocks.heap_allocs(),
            0,
            "{}: a warm resident session must not allocate across traces ({:?})",
            run.name,
            run.report.clocks
        );
    }
}
