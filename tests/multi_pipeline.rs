//! Differential and acceptance tests for the resident corpus scheduler
//! (`pipeline::multi`): verdicts over a corpus must be bit-identical to
//! running a fresh checker panel per trace, per-trace failures must not
//! poison the rest of the corpus, and the resident sessions must beat
//! per-trace re-construction in wall time (the `--ignored` acceptance
//! run).

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use aerodrome_suite::pipeline::multi::{check_corpus, discover, MultiConfig};
use aerodrome_suite::pipeline::par::standard_checkers;
use aerodrome_suite::prelude::*;
use workloads::corpus::{write_corpus, CorpusConfig};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("aerodrome-multi-tests").join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The old way: a fresh checker panel constructed per trace, run
/// sequentially over the file.
fn respawn_panel(path: &Path, validate: bool) -> Vec<(Outcome, u64, u64)> {
    standard_checkers()
        .into_iter()
        .map(|mut checker| {
            let file = std::fs::File::open(path).unwrap();
            let mut pipeline =
                Pipeline::new(StdReader::new(std::io::BufReader::new(file))).validate(validate);
            let outcome = pipeline.run(checker.as_mut()).expect("corpus traces are well-formed");
            let report = checker.report();
            (outcome.outcome, report.events, report.clock_joins)
        })
        .collect()
}

#[test]
fn corpus_run_is_bit_identical_to_per_trace_fresh_checkers() {
    let dir = temp_dir("differential");
    let spec = CorpusConfig { traces: 9, events: 1_500, ..CorpusConfig::default() };
    let paths = write_corpus(&dir, &spec).unwrap();

    for jobs in [1, 2, 4] {
        let config = MultiConfig::default().jobs(jobs).batch_events(257);
        let report = check_corpus(&paths, standard_checkers, &config);
        assert_eq!(report.traces.len(), paths.len());
        for (trace, path) in report.traces.iter().zip(&paths) {
            assert_eq!(&trace.path, path, "discovery order preserved");
            assert!(trace.error.is_none(), "{:?}", trace.error);
            let reference = respawn_panel(path, true);
            assert_eq!(trace.runs.len(), reference.len());
            for (run, (outcome, events, joins)) in trace.runs.iter().zip(&reference) {
                let label = format!("j{jobs}/{}/{}", path.display(), run.name);
                assert_eq!(&run.outcome, outcome, "{label}: verdict");
                assert_eq!(run.report.events, *events, "{label}: events");
                assert_eq!(run.report.clock_joins, *joins, "{label}: clock joins");
            }
        }
        // The corpus injects violations into some generator traces.
        assert!(report.violations() > 0, "corpus must contain violating traces");
        assert!(report.violations() < report.traces.len(), "and serializable ones");
    }
}

#[test]
fn discovery_walks_directories_and_reads_manifests() {
    let dir = temp_dir("discovery");
    let spec = CorpusConfig { traces: 4, events: 300, ..CorpusConfig::default() };
    let written = write_corpus(&dir, &spec).unwrap();
    // Nested traces are found too.
    let nested = dir.join("sub");
    fs::create_dir_all(&nested).unwrap();
    fs::copy(&written[0], nested.join("extra.std")).unwrap();

    let from_dir = discover(&dir).unwrap();
    assert_eq!(from_dir.len(), 5, "{from_dir:?}");
    assert!(from_dir.windows(2).all(|w| w[0] < w[1]), "sorted: {from_dir:?}");

    let from_manifest = discover(&dir.join("manifest.txt")).unwrap();
    assert_eq!(from_manifest.len(), 4, "manifest lists only the written corpus");
    assert!(from_manifest.iter().all(|p| p.is_file()), "{from_manifest:?}");

    let single = discover(&written[1]).unwrap();
    assert_eq!(single, vec![written[1].clone()]);

    assert!(discover(&dir.join("nothing-here")).is_err());
    let empty = temp_dir("discovery-empty");
    assert!(discover(&empty).unwrap_err().contains("no .std or .rbt traces"));
}

#[test]
fn per_trace_failures_do_not_poison_the_corpus() {
    let dir = temp_dir("failures");
    let spec = CorpusConfig { traces: 3, events: 400, ..CorpusConfig::default() };
    let mut paths = write_corpus(&dir, &spec).unwrap();
    // One ill-formed trace (release of an unheld lock) and one missing
    // file, interleaved with the good ones.
    let bad = dir.join("bad.std");
    fs::write(&bad, "t1|begin|0\nt1|w(x)|1\nt1|rel(m)|2\nt1|end|3\n").unwrap();
    paths.insert(1, bad);
    paths.insert(3, dir.join("missing.std"));

    let report = check_corpus(&paths, standard_checkers, &MultiConfig::default().jobs(2));
    assert_eq!(report.traces.len(), 5);
    assert_eq!(report.errors(), 2);
    let bad_run = &report.traces[1];
    let error = bad_run.error.as_ref().unwrap();
    assert!(error.contains("not well-formed"), "{error}");
    assert!(error.contains("line 3"), "ill-formed line attributed: {error}");
    assert_eq!(bad_run.events, 2, "well-formed prefix was fed to the checkers");
    assert!(report.traces[3].error.is_some(), "missing file recorded");
    // The good traces (0, 2, 4) are unaffected — including ones run by
    // the same session *after* an error.
    for i in [0usize, 2, 4] {
        let t = &report.traces[i];
        assert!(t.error.is_none(), "trace {i}: {:?}", t.error);
        let reference = respawn_panel(&t.path, true);
        for (run, (outcome, events, _)) in t.runs.iter().zip(&reference) {
            assert_eq!(&run.outcome, outcome, "trace {i} {}", run.name);
            assert_eq!(run.report.events, *events, "trace {i} {}", run.name);
        }
    }
}

#[test]
fn corpus_totals_aggregate_per_panel_position() {
    let dir = temp_dir("totals");
    let spec = CorpusConfig { traces: 4, events: 800, ..CorpusConfig::default() };
    let paths = write_corpus(&dir, &spec).unwrap();
    let report = check_corpus(&paths, standard_checkers, &MultiConfig::default().jobs(1));
    let totals = report.checker_totals();
    assert_eq!(totals.len(), 4, "one total per panel position");
    for (i, total) in totals.iter().enumerate() {
        let summed: u64 = report.traces.iter().map(|t| t.runs[i].report.events).sum();
        assert_eq!(total.events, summed, "{}", total.name);
        assert_eq!(total.name, report.traces[0].runs[i].name);
    }
    // The vector-clock checkers did real work.
    assert!(totals.iter().any(|t| t.clock_joins > 0));
}

/// The acceptance criterion of the resident runtime, full scale: a
/// 100-trace corpus checked through resident sessions is bit-identical
/// to 100 standalone runs and, at `jobs ≥ 2`, beats per-trace
/// re-construction in wall time. Multi-second in debug builds:
///
/// ```console
/// cargo test --release --test multi_pipeline -- --ignored
/// ```
#[test]
#[ignore = "multi-second in debug builds; run with --release -- --ignored"]
fn hundred_trace_corpus_resident_beats_respawn() {
    let dir = temp_dir("acceptance");
    let spec = CorpusConfig { traces: 100, events: 50_000, ..CorpusConfig::default() };
    let paths = write_corpus(&dir, &spec).unwrap();
    let jobs =
        std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get).clamp(2, 4);

    // Respawn baseline: a fresh panel constructed per trace, verdicts
    // recorded for the differential.
    let respawn_started = Instant::now();
    let reference: Vec<Vec<(Outcome, u64, u64)>> =
        paths.iter().map(|p| respawn_panel(p, true)).collect();
    let respawn_wall = respawn_started.elapsed();

    // Resident corpus run.
    let config = MultiConfig::default().jobs(jobs);
    let resident_started = Instant::now();
    let report = check_corpus(&paths, standard_checkers, &config);
    let resident_wall = resident_started.elapsed();

    assert_eq!(report.traces.len(), 100);
    let mut violating = 0;
    for (trace, reference) in report.traces.iter().zip(&reference) {
        assert!(trace.error.is_none(), "{:?}", trace.error);
        violating += usize::from(trace.any_violation());
        for (run, (outcome, events, joins)) in trace.runs.iter().zip(reference) {
            let label = format!("{}/{}", trace.path.display(), run.name);
            assert_eq!(&run.outcome, outcome, "{label}: verdict");
            assert_eq!(run.report.events, *events, "{label}: events");
            assert_eq!(run.report.clock_joins, *joins, "{label}: clock joins");
        }
    }
    assert!(violating > 0 && violating < 100, "mixed corpus: {violating}/100 violating");
    assert!(
        resident_wall < respawn_wall,
        "resident corpus run ({resident_wall:?}, {jobs} jobs) must beat per-trace \
         re-construction ({respawn_wall:?})"
    );
    println!(
        "resident j{jobs}: {resident_wall:?} vs respawn j1: {respawn_wall:?} \
         over {} events",
        report.events()
    );
}
