//! Session-reuse differentials: a checker that is `reset()` and reused
//! across traces must be observationally identical to constructing a
//! fresh checker per trace — same verdicts, same violation coordinates,
//! same per-trace event/join counters — and, once warm, must perform
//! **zero** clock heap allocations across traces (the `pool_alloc.rs`
//! invariant lifted to the resident multi-trace runtime).

use aerodrome::CheckerReport;
use aerodrome_suite::pipeline::par::{standard_checkers, SendChecker};
use aerodrome_suite::prelude::*;
use proptest::prelude::*;
use tracelog::paper_traces;
use velodrome::VelodromeChecker;
use workloads::shapes;

/// Drives one source through `checker` (validation off: generator
/// sources are well-formed by construction, and the paper traces are
/// prefixes in some cases), returning the verdict and report.
fn drive(checker: &mut dyn Checker, source: Box<dyn EventSource>) -> (Outcome, CheckerReport) {
    let mut pipeline = Pipeline::new(source).validate(false);
    let outcome = pipeline.run(checker).expect("sources are well-formed").outcome;
    (outcome, checker.report())
}

/// Asserts the reused-session result equals the fresh-checker result on
/// everything a reset promises: verdict, events, conflict-handler joins,
/// and the *operation* counters of the clock core (pointwise joins,
/// shares, copy-on-writes). Allocation counters are exactly the ones a
/// warm session improves, so they are asserted separately (to be zero),
/// not equal.
fn assert_identical(
    label: &str,
    session: &(Outcome, CheckerReport),
    fresh: &(Outcome, CheckerReport),
) {
    assert_eq!(session.0, fresh.0, "{label}: verdict");
    assert_eq!(session.1.events, fresh.1.events, "{label}: events");
    assert_eq!(session.1.clock_joins, fresh.1.clock_joins, "{label}: clock joins");
    assert_eq!(session.1.clocks.joins, fresh.1.clocks.joins, "{label}: pointwise joins");
    assert_eq!(session.1.clocks.shares, fresh.1.clocks.shares, "{label}: shares");
    assert_eq!(session.1.clocks.cow_copies, fresh.1.clocks.cow_copies, "{label}: cow copies");
}

/// One panel reused over a sequence of sources vs a fresh panel per
/// trace.
fn assert_session_matches_fresh(label: &str, sources: &[&dyn Fn() -> Box<dyn EventSource>]) {
    let mut session: Vec<SendChecker> = standard_checkers();
    for (t, fresh_source) in sources.iter().enumerate() {
        let fresh_panel = standard_checkers();
        for (reused, mut fresh) in session.iter_mut().zip(fresh_panel) {
            reused.reset();
            let name = fresh.name();
            let s = drive(reused.as_mut(), fresh_source());
            let f = drive(fresh.as_mut(), fresh_source());
            assert_identical(&format!("{label}/trace{t}/{name}"), &s, &f);
        }
    }
}

#[test]
fn reused_sessions_match_fresh_checkers_on_paper_traces_and_shapes() {
    let paper =
        [paper_traces::rho1(), paper_traces::rho2(), paper_traces::rho3(), paper_traces::rho4()];
    let mut sources: Vec<Box<dyn Fn() -> Box<dyn EventSource>>> = Vec::new();
    for trace in paper {
        let text = write_trace(&trace);
        sources.push(Box::new(move || {
            Box::new(StdReader::new(std::io::Cursor::new(text.clone().into_bytes())))
        }));
    }
    for name in shapes::SHAPE_NAMES {
        let cfg = GenConfig {
            events: 3_000,
            threads: if name == "fanout" { 13 } else { 5 },
            ..GenConfig::default()
        };
        sources.push(Box::new(move || shapes::source(name, &cfg).expect("known shape")));
    }
    for violation_at in [None, Some(0.4)] {
        let cfg = GenConfig { events: 4_000, threads: 6, violation_at, ..GenConfig::default() };
        sources.push(Box::new(move || Box::new(GenSource::new(&cfg))));
    }
    let refs: Vec<&dyn Fn() -> Box<dyn EventSource>> = sources.iter().map(AsRef::as_ref).collect();
    assert_session_matches_fresh("fixed", &refs);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The corpus differential: a random *sequence* of trace configs
    /// (generated with the shim's `vec` combinator, which shrinks a
    /// failing corpus by dropping traces and then minimising each) is
    /// checked through one reused session and through per-trace fresh
    /// checkers; every trace of the sequence must agree bit for bit.
    #[test]
    fn reused_session_is_identical_over_random_corpora(
        specs in prop::collection::vec(
            (0u64..1_000, 2usize..7, 0u32..4, any::<bool>()),
            2..5,
        )
    ) {
        let mut session: Vec<SendChecker> = standard_checkers();
        for (t, &(seed, threads, kind, violate)) in specs.iter().enumerate() {
            let cfg = GenConfig {
                seed,
                threads,
                events: 1_200,
                violation_at: (violate && kind == 0).then_some(0.5),
                ..GenConfig::default()
            };
            let fresh_source = || -> Box<dyn EventSource> {
                match kind {
                    0 => Box::new(GenSource::new(&cfg)),
                    1 => shapes::source("convoy", &cfg).expect("convoy"),
                    2 => shapes::source("fanout", &cfg).expect("fanout"),
                    _ => shapes::source("nesting", &cfg).expect("nesting"),
                }
            };
            for (reused, mut fresh) in session.iter_mut().zip(standard_checkers()) {
                reused.reset();
                let name = fresh.name();
                let s = drive(reused.as_mut(), fresh_source());
                let f = drive(fresh.as_mut(), fresh_source());
                prop_assert_eq!(&s.0, &f.0, "trace {} {}: verdict", t, name);
                prop_assert_eq!(s.1.events, f.1.events, "trace {} {}: events", t, name);
                prop_assert_eq!(s.1.clock_joins, f.1.clock_joins, "trace {} {}: joins", t, name);
                prop_assert_eq!(s.1.clocks.joins, f.1.clocks.joins, "trace {} {}: vc joins", t, name);
            }
        }
    }
}

/// Velodrome's graph statistics are part of the session contract too:
/// the reset graph recycles node slots in fresh order, so even the DFS
/// visit counters of a reused checker match a fresh one exactly.
#[test]
fn velodrome_session_reports_fresh_identical_graph_stats() {
    let mut reused = VelodromeChecker::new();
    for seed in [3u64, 7, 11] {
        let cfg = GenConfig {
            seed,
            events: 3_000,
            threads: 5,
            retention: seed == 7,
            violation_at: (seed == 11).then_some(0.5),
            ..GenConfig::default()
        };
        reused.reset();
        let mut fresh = VelodromeChecker::new();
        let (so, _) = drive(&mut reused, Box::new(GenSource::new(&cfg)));
        let (fo, _) = drive(&mut fresh, Box::new(GenSource::new(&cfg)));
        assert_eq!(so, fo, "seed {seed}: verdict");
        assert_eq!(reused.stats(), fresh.stats(), "seed {seed}: graph statistics");
        assert_eq!(reused.witness(), fresh.witness(), "seed {seed}: witness cycle");
    }
}

/// The cross-trace zero-allocation probe: after one warm-up round over
/// the corpus working set, re-checking the same mix of traces through
/// the reused session performs no clock heap allocations at all —
/// `heap_allocs` (reported per trace since the reset) is flat at zero
/// from the second round onward.
#[test]
fn cross_trace_checking_is_allocation_free_once_warm() {
    let configs = [
        ("convoy", GenConfig { seed: 42, threads: 8, events: 60_000, ..GenConfig::default() }),
        (
            "gen",
            GenConfig { seed: 7, threads: 8, vars: 64, events: 40_000, ..GenConfig::default() },
        ),
        ("nesting", GenConfig { seed: 5, threads: 6, events: 30_000, ..GenConfig::default() }),
    ];
    let source = |name: &str, cfg: &GenConfig| -> Box<dyn EventSource> {
        match name {
            "gen" => Box::new(GenSource::new(cfg)),
            shape => shapes::source(shape, cfg).expect("known shape"),
        }
    };
    let mut checker = OptimizedChecker::new();
    for round in 0..3 {
        for (name, cfg) in &configs {
            checker.reset();
            let (_, report) = drive(&mut checker, source(name, cfg));
            assert!(report.events >= cfg.events as u64, "{name}: ran {} events", report.events);
            if round > 0 {
                assert_eq!(
                    report.clocks.heap_allocs(),
                    0,
                    "round {round} {name}: a warm resident session must not allocate \
                     clock buffers across traces ({:?})",
                    report.clocks
                );
            }
        }
    }
}

/// The retained-storage budget is enforced at the session seam: a trace
/// with a pathological thread count inflates the pool, and the next
/// reset trims it back under the default budget (visible in
/// `retained_bytes`) without disturbing verdicts.
#[test]
fn reset_trims_adversarial_pool_growth() {
    use aerodrome::state::DEFAULT_RETAINED_CLOCK_BYTES;

    let mut checker = OptimizedChecker::new();
    // A wide fanout: thousands of threads → max-width clock buffers.
    let wide = GenConfig { seed: 1, threads: 2_000, events: 30_000, ..GenConfig::default() };
    let (_, wide_report) = drive(&mut checker, shapes::source("fanout", &wide).expect("fanout"));
    assert!(wide_report.events > 0);
    let inflated = checker.clock_stats().retained_bytes;
    assert!(
        inflated > DEFAULT_RETAINED_CLOCK_BYTES,
        "the adversarial trace must actually inflate the pool ({inflated} bytes)"
    );
    checker.reset();
    let retained = checker.clock_stats().retained_bytes;
    assert!(
        retained <= DEFAULT_RETAINED_CLOCK_BYTES,
        "reset must trim the pool under the documented budget: {retained} bytes retained"
    );
    // The session still checks correctly after the trim.
    let small = GenConfig { seed: 2, threads: 4, events: 2_000, ..GenConfig::default() };
    let s = drive(&mut checker, Box::new(GenSource::new(&small)));
    let f = drive(&mut OptimizedChecker::new(), Box::new(GenSource::new(&small)));
    assert_identical("post-trim", &s, &f);
}
