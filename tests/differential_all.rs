//! Whole-suite differential testing across the clone-free refactor:
//! every AeroDrome variant on both clock cores, plus Velodrome, over
//! paper traces, every workload shape and random workloads.
//!
//! Invariants (Theorems 2–3 on closed traces):
//! * pooled and cloned instantiations of the *same* rules are
//!   bit-identical: same verdict, same violation event/thread/kind;
//! * Basic, ReadOpt and Optimized agree on the verdict; Basic and
//!   ReadOpt agree on the detection event; Optimized never detects later
//!   than Basic;
//! * Velodrome agrees on the verdict (its detection event may differ).

use aerodrome::basic::{BasicChecker, ClonedBasicChecker};
use aerodrome::optimized::{ClonedOptimizedChecker, OptimizedChecker};
use aerodrome::readopt::{ClonedReadOptChecker, ReadOptChecker};
use aerodrome::{run_checker, Outcome};
use proptest::prelude::*;
use tracelog::Trace;
use velodrome::VelodromeChecker;
use workloads::{generate, GenConfig};

/// Runs every checker over `trace` and asserts all cross-checker
/// invariants; returns the common verdict.
fn assert_coherent(name: &str, trace: &Trace) -> bool {
    let basic = run_checker(&mut BasicChecker::new(), trace);
    let readopt = run_checker(&mut ReadOptChecker::new(), trace);
    let optimized = run_checker(&mut OptimizedChecker::new(), trace);

    // The pooled store must reproduce the cloned baseline exactly.
    assert_eq!(
        basic,
        run_checker(&mut ClonedBasicChecker::new(), trace),
        "{name}: pooled vs cloned basic"
    );
    assert_eq!(
        readopt,
        run_checker(&mut ClonedReadOptChecker::new(), trace),
        "{name}: pooled vs cloned readopt"
    );
    assert_eq!(
        optimized,
        run_checker(&mut ClonedOptimizedChecker::new(), trace),
        "{name}: pooled vs cloned optimized"
    );

    // Cross-variant invariants.
    assert_eq!(basic.is_violation(), readopt.is_violation(), "{name}: basic vs readopt verdict");
    assert_eq!(
        basic.is_violation(),
        optimized.is_violation(),
        "{name}: basic vs optimized verdict"
    );
    if let (Outcome::Violation(b), Outcome::Violation(r)) = (&basic, &readopt) {
        assert_eq!(b.event, r.event, "{name}: basic vs readopt event");
        assert_eq!(b.thread, r.thread, "{name}: basic vs readopt thread");
    }
    if let (Outcome::Violation(b), Outcome::Violation(o)) = (&basic, &optimized) {
        assert!(o.event <= b.event, "{name}: optimized detected later than basic");
    }

    // Velodrome: verdict only.
    let velodrome = run_checker(&mut VelodromeChecker::new(), trace);
    assert_eq!(basic.is_violation(), velodrome.is_violation(), "{name}: velodrome verdict");

    basic.is_violation()
}

#[test]
fn paper_traces_are_coherent() {
    use tracelog::paper_traces::{rho1, rho2, rho3, rho4};
    assert!(!assert_coherent("rho1", &rho1()));
    assert!(assert_coherent("rho2", &rho2()));
    assert!(assert_coherent("rho3", &rho3()));
    assert!(assert_coherent("rho4", &rho4()));
}

#[test]
fn all_shapes_are_coherent_and_serializable() {
    for name in workloads::shapes::SHAPE_NAMES {
        for threads in [2, 5, 17] {
            let cfg = GenConfig { seed: 23, threads, events: 5_000, ..GenConfig::default() };
            let trace = workloads::shapes::collect(name, &cfg).expect("known shape");
            assert!(!assert_coherent(name, &trace), "{name} shapes are serializable");
        }
    }
}

#[test]
fn generated_workloads_are_coherent() {
    for seed in 0..4u64 {
        for violation_at in [None, Some(0.5)] {
            for retention in [false, true] {
                let cfg = GenConfig {
                    seed,
                    threads: 6,
                    events: 3_000,
                    vars: 48,
                    locks: 3,
                    retention,
                    probe_period: 40,
                    violation_at,
                    ..GenConfig::default()
                };
                let name = format!("seed={seed} v={violation_at:?} r={retention}");
                let verdict = assert_coherent(&name, &generate(&cfg));
                assert_eq!(verdict, violation_at.is_some(), "{name}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random generator configurations: every knob jittered, all
    /// checkers and both cores coherent.
    #[test]
    fn random_configs_are_coherent(
        seed in 0u64..1_000,
        threads in 1usize..8,
        locks in 1usize..4,
        vars in 4usize..96,
        avg_txn_len in 1usize..10,
        txn_pct in 0u32..101,
        shared_pct in 0u32..101,
        write_pct in 0u32..101,
        retention in any::<bool>(),
        // 0 = no injected violation; 1..=100 → inject at that fraction.
        violation_pct in 0u32..101,
    ) {
        let cfg = GenConfig {
            seed,
            threads,
            locks,
            vars,
            events: 1_200,
            avg_txn_len,
            txn_fraction: f64::from(txn_pct) / 100.0,
            shared_fraction: f64::from(shared_pct) / 100.0,
            write_fraction: f64::from(write_pct) / 100.0,
            retention,
            probe_period: 25,
            violation_at: (violation_pct > 0).then(|| f64::from(violation_pct - 1) / 100.0),
        };
        let trace = generate(&cfg);
        assert_coherent(&format!("{cfg:?}"), &trace);
    }
}
