//! Differential and acceptance tests for the binary trace format and
//! chunk-parallel ingest (`tracelog::binfmt` + `pipeline::par`):
//! chunked multi-reader decoding must be *bit-identical* to the
//! single-reader mmap path and to the text `.std` path — same verdicts,
//! same violation coordinates, same checker counters, same validator
//! residue — and a truncated or stomped file must fail with an error
//! that names the chunk and record, mirroring the text reader's line
//! numbers.

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;
use std::sync::Arc;

use aerodrome_suite::pipeline::par::{check_all, check_all_chunked, standard_checkers, ParConfig};
use tracelog::binfmt::{self, BinTrace, MmapSource};
use tracelog::stream::EventSource;
use tracelog::SourceError;
use workloads::{shapes, GenConfig};

/// Writes `cfg`'s shape (or the mixed generator for `None`) as `.rbt`
/// with deliberately small chunks so even tiny traces split.
fn write_rbt(name: &str, shape: Option<&str>, cfg: &GenConfig, chunk_events: u32) -> PathBuf {
    let dir = std::env::temp_dir().join("rapid-binfmt-ingest-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}.rbt"));
    let mut source: Box<dyn EventSource> = match shape {
        Some(s) => shapes::source(s, cfg).expect("known shape"),
        None => Box::new(workloads::GenSource::new(cfg)),
    };
    let mut out = BufWriter::new(File::create(&path).unwrap());
    binfmt::write_binary(source.as_mut(), &mut out, chunk_events).unwrap();
    out.flush().unwrap();
    path
}

/// Chunk-parallel ingest at 2 and 4 readers is bit-identical to the
/// single-reader mmap run on the same mapping, across shapes, the mixed
/// generator and both verdicts.
#[test]
fn chunked_ingest_is_bit_identical_to_single_reader() {
    let mut cases: Vec<(String, GenConfig, Option<&str>)> = Vec::new();
    for name in shapes::SHAPE_NAMES {
        let cfg = GenConfig {
            events: 6_000,
            threads: if name == "fanout" { 17 } else { 6 },
            ..GenConfig::default()
        };
        cases.push((format!("shape:{name}"), cfg, Some(name)));
    }
    for violation_at in [None, Some(0.5)] {
        let cfg = GenConfig { events: 6_000, violation_at, ..GenConfig::default() };
        cases.push((format!("gen:violation={violation_at:?}"), cfg, None));
    }

    for (label, cfg, shape) in &cases {
        let path = write_rbt(&label.replace([':', '='], "-"), *shape, cfg, 512);
        let trace = Arc::new(BinTrace::open(&path).unwrap());
        let config = ParConfig { jobs: 2, ..ParConfig::default() };

        let mut single = MmapSource::new(Arc::clone(&trace));
        let reference = check_all(&mut single, standard_checkers(), &config).unwrap();

        for ingest_jobs in [2usize, 4] {
            let report =
                check_all_chunked(&trace, standard_checkers(), &config, ingest_jobs).unwrap();
            assert_eq!(report.events, reference.events, "{label}@{ingest_jobs}: events");
            assert_eq!(report.summary, reference.summary, "{label}@{ingest_jobs}: validator");
            assert!(report.stats.ingest_readers >= 2, "{label}@{ingest_jobs}: readers");
            for (run, reference_run) in report.runs.iter().zip(&reference.runs) {
                assert_eq!(
                    run.outcome, reference_run.outcome,
                    "{label}@{ingest_jobs}/{}: verdict",
                    run.name
                );
                assert_eq!(
                    run.report, reference_run.report,
                    "{label}@{ingest_jobs}/{}: checker report",
                    run.name
                );
            }
        }
    }
}

/// A stomped record fails chunked ingest with the same `record N
/// (chunk C)` attribution the single reader gives — the first error in
/// trace order wins regardless of which reader hits it.
#[test]
fn corrupted_chunk_fails_with_record_attribution_under_every_reader_count() {
    let cfg = GenConfig { events: 4_000, ..GenConfig::default() };
    let path = write_rbt("stomped", Some("convoy"), &cfg, 256);
    // Stomp the opcode of record 700 (chunk 2 at 256 events/chunk).
    let mut bytes = std::fs::read(&path).unwrap();
    let offset = binfmt::HEADER_BYTES + 700 * tracelog::wire::EVENT_RECORD_BYTES;
    bytes[offset] = 0xEE;
    std::fs::write(&path, &bytes).unwrap();

    let trace = Arc::new(BinTrace::open(&path).unwrap());
    let config = ParConfig { jobs: 2, ..ParConfig::default() };
    for ingest_jobs in [1usize, 2, 4] {
        let err = check_all_chunked(&trace, standard_checkers(), &config, ingest_jobs)
            .expect_err("stomped record must fail ingest");
        let SourceError::Binary(inner) = &err else {
            panic!("@{ingest_jobs}: expected a binary decode error, got {err}");
        };
        let text = inner.to_string();
        assert!(text.contains("record 700 (chunk 2)"), "@{ingest_jobs}: attribution lost: {text}");
    }
}

/// A file truncated mid-events is rejected at open — the footer (and
/// with it the chunk index) is gone, so the failure is structural, not
/// a silent partial read.
#[test]
fn truncated_file_is_rejected_at_open() {
    let cfg = GenConfig { events: 2_000, ..GenConfig::default() };
    let path = write_rbt("truncated", Some("convoy"), &cfg, 256);
    let bytes = std::fs::read(&path).unwrap();
    let cut = binfmt::HEADER_BYTES + 1_000 * tracelog::wire::EVENT_RECORD_BYTES;
    std::fs::write(&path, &bytes[..cut]).unwrap();
    let err = BinTrace::open(&path).expect_err("truncated file must not open");
    let text = err.to_string();
    assert!(
        text.contains("end magic") || text.contains("footer") || text.contains("truncated"),
        "unhelpful truncation error: {text}"
    );
}

/// Scheduled-CI acceptance: a 5M-event convoy written as `.rbt` checks
/// through chunk-parallel ingest with verdicts identical to the
/// single-reader run, and the run reports its ingest throughput.
///
/// ```console
/// cargo test --release --test binfmt_ingest -- --ignored
/// ```
#[test]
#[ignore = "multi-minute in debug builds; run with --release -- --ignored"]
fn five_million_event_binary_ingest_acceptance() {
    use std::time::Instant;

    let cfg = GenConfig { seed: 42, events: 5_000_000, threads: 8, ..GenConfig::default() };
    let path = write_rbt("acceptance-5m", Some("convoy"), &cfg, binfmt::DEFAULT_CHUNK_EVENTS);
    let trace = Arc::new(BinTrace::open(&path).unwrap());
    assert!(trace.event_count() >= 5_000_000);

    let jobs = std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get).min(4);
    let config = ParConfig::default().jobs(jobs);

    let mut single = MmapSource::new(Arc::clone(&trace));
    let started = Instant::now();
    let reference = check_all(&mut single, standard_checkers(), &config).unwrap();
    let single_wall = started.elapsed();

    let started = Instant::now();
    let report = check_all_chunked(&trace, standard_checkers(), &config, jobs.max(2)).unwrap();
    let chunked_wall = started.elapsed();

    assert_eq!(report.events, reference.events);
    assert_eq!(report.summary, reference.summary);
    for (run, reference_run) in report.runs.iter().zip(&reference.runs) {
        assert_eq!(run.outcome, reference_run.outcome, "{}", run.name);
        assert_eq!(run.report, reference_run.report, "{}", run.name);
    }
    let events = report.events as f64;
    println!(
        "5M acceptance: single {:.3}s ({:.0} events/s)  chunked×{} {:.3}s ({:.0} events/s)",
        single_wall.as_secs_f64(),
        events / single_wall.as_secs_f64(),
        report.stats.ingest_readers,
        chunked_wall.as_secs_f64(),
        events / chunked_wall.as_secs_f64(),
    );
}
