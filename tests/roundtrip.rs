//! Cross-crate pipeline tests: generate → serialize → parse → analyze,
//! plus end-to-end checks of every benchmark profile (at reduced scale).

use aerodrome_suite::prelude::*;

#[test]
fn generated_traces_roundtrip_through_std_format() {
    for seed in [1u64, 2, 3] {
        let cfg = GenConfig {
            seed,
            events: 2_000,
            violation_at: (seed % 2 == 0).then_some(0.5),
            ..GenConfig::default()
        };
        let trace = generate(&cfg);
        let text = write_trace(&trace);
        let back = parse_trace(&text).expect("reparse");
        // Identifier *indices* may be re-interned in first-occurrence
        // order, but names — and therefore the serialized form — are a
        // fixpoint.
        assert_eq!(write_trace(&back), text);
        assert_eq!(back.len(), trace.len());
        // Verdicts survive the roundtrip.
        let before = run_checker(&mut OptimizedChecker::new(), &trace);
        let after = run_checker(&mut OptimizedChecker::new(), &back);
        assert_eq!(before.is_violation(), after.is_violation());
    }
}

#[test]
fn every_profile_generates_a_wellformed_trace_with_expected_verdict() {
    for mut profile in workloads::table1().into_iter().chain(workloads::table2()) {
        // Reduced scale keeps the debug-build test fast; the bench harness
        // exercises full scale.
        profile.cfg.events = profile.cfg.events.min(6_000);
        let trace = generate(&profile.cfg);
        let summary = validate(&trace).unwrap_or_else(|e| panic!("{}: {e}", profile.name));
        assert!(summary.is_closed(), "{}", profile.name);

        let info = MetaInfo::of(&trace);
        assert_eq!(info.threads, profile.cfg.threads, "{}", profile.name);
        assert!(info.locks <= profile.cfg.locks.max(1), "{}", profile.name);

        let aero = run_checker(&mut OptimizedChecker::new(), &trace);
        let velo = run_checker(&mut VelodromeChecker::new(), &trace);
        assert_eq!(
            aero.is_violation(),
            !profile.row.atomic,
            "{}: aerodrome verdict vs Atomic? column",
            profile.name
        );
        assert_eq!(
            velo.is_violation(),
            aero.is_violation(),
            "{}: baseline disagrees",
            profile.name
        );
    }
}

#[test]
fn scenario_traces_roundtrip_and_agree() {
    use workloads::scenarios::{bank, producer_consumer};
    for (name, trace, violating) in [
        ("bank-safe", bank(5, 10, false), false),
        ("bank-audit", bank(5, 10, true), true),
        ("pc-safe", producer_consumer(6, false), false),
        ("pc-racy", producer_consumer(6, true), true),
    ] {
        let text = write_trace(&trace);
        let back = parse_trace(&text).unwrap();
        for outcome in [
            run_checker(&mut BasicChecker::new(), &back),
            run_checker(&mut OptimizedChecker::new(), &back),
            run_checker(&mut VelodromeChecker::new(), &back),
        ] {
            assert_eq!(outcome.is_violation(), violating, "{name}");
        }
    }
}

#[test]
fn checkers_are_incremental_not_batch() {
    // Feeding a trace in two halves through the same checker must equal
    // feeding it at once (the online-analysis claim).
    let cfg = GenConfig { events: 3_000, violation_at: Some(0.9), ..GenConfig::default() };
    let trace = generate(&cfg);
    let whole = run_checker(&mut OptimizedChecker::new(), &trace);

    let mut split = OptimizedChecker::new();
    let mid = trace.len() / 2;
    let mut outcome = Outcome::Serializable;
    for &e in &trace.events()[..mid] {
        if let Err(v) = split.process(e) {
            outcome = Outcome::Violation(v);
            break;
        }
    }
    if !outcome.is_violation() {
        for &e in &trace.events()[mid..] {
            if let Err(v) = split.process(e) {
                outcome = Outcome::Violation(v);
                break;
            }
        }
    }
    assert_eq!(whole, outcome);
}
