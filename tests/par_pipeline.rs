//! Differential and acceptance tests for the parallel checking runtime
//! (`pipeline::par`): one parse pass fanned out to all checkers must be
//! *bit-identical* to running each checker standalone — same verdicts,
//! same violation coordinates, same clock-core counters — and the
//! bounded channels must keep memory flat however slow a worker is.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aerodrome::CheckerReport;
use aerodrome_suite::pipeline::par::{check_all, standard_checkers, ParConfig, SendChecker};
use aerodrome_suite::prelude::*;
use workloads::shapes;

/// Standalone reference: each checker of the standard panel run on its
/// own sequential pipeline over a fresh copy of the same source.
fn standalone_panel(
    mut fresh_source: impl FnMut() -> Box<dyn EventSource>,
    validate: bool,
) -> Vec<(Outcome, CheckerReport)> {
    standard_checkers()
        .into_iter()
        .map(|mut checker| {
            let mut pipeline = Pipeline::new(fresh_source()).validate(validate);
            let report = pipeline.run(checker.as_mut()).expect("well-formed source");
            (report.outcome, checker.report())
        })
        .collect()
}

/// Asserts one parallel run against the standalone panel, bit for bit.
fn assert_par_matches_standalone(
    mut fresh_source: impl FnMut() -> Box<dyn EventSource>,
    config: &ParConfig,
    label: &str,
) {
    let reference = standalone_panel(&mut fresh_source, config.validate);
    let mut source = fresh_source();
    let report = check_all(source.as_mut(), standard_checkers(), config).expect("well-formed");
    assert_eq!(report.runs.len(), reference.len(), "{label}");
    for (run, (outcome, reference_report)) in report.runs.iter().zip(&reference) {
        assert_eq!(&run.outcome, outcome, "{label}/{}: verdict", run.name);
        assert_eq!(&run.report, reference_report, "{label}/{}: checker report", run.name);
    }
}

#[test]
fn parallel_run_is_bit_identical_on_shapes_and_workloads() {
    let mut cases: Vec<(String, GenConfig, Option<&str>)> = Vec::new();
    for name in shapes::SHAPE_NAMES {
        let cfg = GenConfig {
            events: 8_000,
            threads: if name == "fanout" { 17 } else { 6 },
            ..GenConfig::default()
        };
        cases.push((format!("shape:{name}"), cfg, Some(name)));
    }
    for violation_at in [None, Some(0.5)] {
        // Retention kept small: it is the quadratic regime for the
        // Velodrome panel member, and it runs 4 standalone + 1 parallel
        // pass per configuration here.
        let cfg = GenConfig {
            events: if violation_at.is_none() { 3_000 } else { 8_000 },
            threads: 6,
            retention: violation_at.is_none(),
            probe_period: 60,
            violation_at,
            ..GenConfig::default()
        };
        cases.push((format!("gen:violation={violation_at:?}"), cfg, None));
    }

    for (label, cfg, shape) in cases {
        let fresh = || -> Box<dyn EventSource> {
            match shape {
                Some(name) => shapes::source(name, &cfg).expect("known shape"),
                None => Box::new(GenSource::new(&cfg)),
            }
        };
        for (jobs, batch) in [(1, 512), (2, 4096), (4, 257), (8, 1024)] {
            let config = ParConfig::default().jobs(jobs).batch_events(batch);
            assert_par_matches_standalone(fresh, &config, &format!("{label}/j{jobs}/b{batch}"));
        }
    }
}

#[test]
fn parallel_run_reports_ill_formed_input_like_the_sequential_pipeline() {
    let log = "t1|begin|0\nt1|w(x)|1\nt1|rel(m)|2\n";
    let mut source = StdReader::new(log.as_bytes());
    let err = check_all(&mut source, standard_checkers(), &ParConfig::default()).unwrap_err();
    assert!(matches!(err, SourceError::Malformed(_)), "{err}");

    // Opting out matches Pipeline::validate(false): the checkers accept
    // the events (verdicts on ill-formed traces are meaningless but the
    // run must not crash).
    let mut source = StdReader::new(log.as_bytes());
    let report =
        check_all(&mut source, standard_checkers(), &ParConfig::default().validate(false)).unwrap();
    assert_eq!(report.events, 3);
    assert!(report.summary.is_none());
}

/// A checker that throttles its worker: the ingest thread would fill
/// memory with parsed batches if the bounded channels did not push back.
struct SlowChecker {
    inner: Box<dyn Checker + Send>,
    stall_every: u64,
}

impl Checker for SlowChecker {
    fn process(&mut self, event: Event) -> Result<(), aerodrome::Violation> {
        if self.inner.events_processed().is_multiple_of(self.stall_every) {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.inner.process(event)
    }

    fn events_processed(&self) -> u64 {
        self.inner.events_processed()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn report(&self) -> CheckerReport {
        self.inner.report()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// Backpressure: with a deliberately slow worker next to fast ones, the
/// run still allocates only `channel_batches + 2` batch arenas — ingest
/// waits for recycled arenas instead of buffering the trace.
#[test]
fn slow_worker_never_grows_memory() {
    let cfg = GenConfig { events: 60_000, threads: 6, ..GenConfig::default() };
    let checkers: Vec<SendChecker> = vec![
        Box::new(OptimizedChecker::new()),
        Box::new(SlowChecker { inner: Box::new(BasicChecker::new()), stall_every: 512 }),
        Box::new(ReadOptChecker::new()),
    ];
    let config = ParConfig::default().jobs(3).batch_events(256).channel_batches(2);
    let mut source = GenSource::new(&cfg);
    let report = check_all(&mut source, checkers, &config).unwrap();
    assert!(report.stats.batches > 100, "enough batches to make buffering observable");
    assert!(
        report.stats.batch_buffers <= config.channel_batches + 2,
        "bounded channels must bound the arena pool: {:?}",
        report.stats
    );
    assert!(report.runs.iter().all(|r| !r.outcome.is_violation()));
}

/// An `OptimizedChecker` that samples its own pool's heap-allocation
/// counter at a warm-up point *on the worker thread* — the
/// `tests/pool_alloc.rs` invariant, measured where the shard-local pool
/// actually lives.
struct WarmupProbe {
    inner: OptimizedChecker,
    warmup: u64,
    at_warmup: Arc<AtomicU64>,
}

impl Checker for WarmupProbe {
    fn process(&mut self, event: Event) -> Result<(), aerodrome::Violation> {
        let result = self.inner.process(event);
        if self.inner.events_processed() == self.warmup {
            self.at_warmup.store(self.inner.report().clocks.heap_allocs(), Ordering::Relaxed);
        }
        result
    }

    fn events_processed(&self) -> u64 {
        self.inner.events_processed()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn report(&self) -> CheckerReport {
        self.inner.report()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// Each worker's shard-local pool reaches the zero-allocation steady
/// state inside the parallel runtime, exactly as in the sequential
/// `tests/pool_alloc.rs` run.
#[test]
fn worker_local_pools_reach_zero_alloc_steady_state() {
    let cfg = GenConfig { seed: 42, threads: 8, events: 200_000, ..GenConfig::default() };
    let at_warmup = Arc::new(AtomicU64::new(u64::MAX));
    let probe = WarmupProbe {
        inner: OptimizedChecker::new(),
        warmup: 100_000,
        at_warmup: Arc::clone(&at_warmup),
    };
    let checkers: Vec<SendChecker> = vec![Box::new(probe), Box::new(OptimizedChecker::new())];
    let mut source = shapes::ConvoySource::new(&cfg);
    let report = check_all(&mut source, checkers, &ParConfig::default().jobs(2)).unwrap();
    let warm = at_warmup.load(Ordering::Relaxed);
    let end = report.runs[0].report.clocks.heap_allocs();
    assert_ne!(warm, u64::MAX, "warm-up point must be reached");
    assert_eq!(
        end, warm,
        "steady-state checking on a worker thread must not allocate clock buffers"
    );
}

/// The acceptance criterion of the parallel-runtime refactor, full
/// scale: on 1M-event convoy/fanout/nesting traces, `compare`-style
/// parallel runs are bit-identical to standalone runs, finish in less
/// wall time than the standalone runs summed, and the worker-local
/// pools stay allocation-free after warm-up. Multi-minute in debug
/// builds:
///
/// ```console
/// cargo test --release --test par_pipeline -- --ignored
/// ```
#[test]
#[ignore = "multi-minute in debug builds; run with --release -- --ignored"]
fn million_event_single_pass_fanout_beats_standalone_reruns() {
    let jobs = std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get).min(4);
    for name in shapes::SHAPE_NAMES {
        let cfg = GenConfig {
            seed: 42,
            events: 1_000_000,
            threads: if name == "fanout" { 33 } else { 8 },
            ..GenConfig::default()
        };
        let fresh = || shapes::source(name, &cfg).expect("known shape");

        // Standalone: one full pass per checker (re-reading the source
        // each time, as `rapid aerodrome` × 3 + `rapid velodrome` would).
        let standalone_started = Instant::now();
        let reference = standalone_panel(&mut || fresh(), true);
        let standalone_wall = standalone_started.elapsed();

        // Parallel: one pass, all checkers.
        let config = ParConfig::default().jobs(jobs);
        let par_started = Instant::now();
        let mut source = fresh();
        let report = check_all(source.as_mut(), standard_checkers(), &config).unwrap();
        let par_wall = par_started.elapsed();

        for (run, (outcome, reference_report)) in report.runs.iter().zip(&reference) {
            assert_eq!(&run.outcome, outcome, "{name}/{}", run.name);
            assert_eq!(&run.report, reference_report, "{name}/{}", run.name);
        }
        assert!(report.events >= 1_000_000, "{name}: ran {} events", report.events);
        assert!(
            jobs < 2 || par_wall < standalone_wall,
            "{name}: single-pass fan-out ({par_wall:?}, {jobs} jobs) must beat \
             the standalone runs summed ({standalone_wall:?})"
        );
    }

    // Zero-alloc steady state on the worker, pool_alloc-style — on the
    // same workloads tests/pool_alloc.rs pins (the convoy's high-water
    // mark settles by the half-way warm-up; wider shapes keep inching up
    // past any fixed warm-up point, so they are not part of the
    // sequential invariant either).
    let probe_cfg = GenConfig { seed: 42, threads: 8, events: 1_000_000, ..GenConfig::default() };
    let at_warmup = Arc::new(AtomicU64::new(u64::MAX));
    let probe = WarmupProbe {
        inner: OptimizedChecker::new(),
        warmup: 500_000,
        at_warmup: Arc::clone(&at_warmup),
    };
    let mut source = shapes::ConvoySource::new(&probe_cfg);
    let probe_report =
        check_all(&mut source, vec![Box::new(probe)], &ParConfig::default()).unwrap();
    let warm = at_warmup.load(Ordering::Relaxed);
    assert_ne!(warm, u64::MAX, "warm-up point must be reached");
    assert_eq!(
        probe_report.runs[0].report.clocks.heap_allocs(),
        warm,
        "worker-local pool must stop allocating after warm-up"
    );
}
