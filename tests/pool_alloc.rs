//! The zero-allocation steady-state invariant of the pooled clock core
//! (docs/PERF.md): once the pool is warm, checking performs no clock
//! heap allocations — fresh buffers and capacity grows both stop.

use aerodrome::optimized::OptimizedChecker;
use aerodrome::Checker;
use tracelog::stream::EventSource;
use workloads::{shapes::ConvoySource, GenConfig, GenSource};

/// Streams `source` into a fresh optimized checker, sampling the pool's
/// heap-allocation counter at `warmup` events and at the end.
fn allocs_after_warmup(mut source: impl EventSource, warmup: u64) -> (u64, u64, u64) {
    let mut checker = OptimizedChecker::new();
    let mut at_warmup = None;
    while let Some(event) = source.next_event().expect("generator sources cannot fail") {
        checker.process(event).expect("workload shapes are serializable");
        if at_warmup.is_none() && checker.events_processed() >= warmup {
            at_warmup = Some(checker.report().clocks.heap_allocs());
        }
    }
    let report = checker.report();
    (at_warmup.expect("trace longer than warmup"), report.clocks.heap_allocs(), report.events)
}

/// Acceptance criterion: a 1M-event contended-lock convoy performs zero
/// clock heap allocations after warm-up (the first half of the trace —
/// the pool's high-water mark depends on the rare worst interleaving, so
/// the working set keeps inching up for a while before reaching its
/// fixpoint). The convoy is the worst case for clock traffic: every
/// transaction assigns and joins the single global lock clock.
#[test]
fn million_event_convoy_is_allocation_free_after_warmup() {
    let cfg = GenConfig { seed: 42, threads: 8, events: 1_000_000, ..GenConfig::default() };
    let (warm, end, events) = allocs_after_warmup(ConvoySource::new(&cfg), 500_000);
    assert!(events >= 1_000_000, "ran {events} events");
    assert_eq!(
        end, warm,
        "steady-state checking must not allocate clock buffers: \
         {warm} at warm-up, {end} at the end of {events} events"
    );
}

/// The same invariant holds on the mixed generator workload (reads,
/// writes, locks, unary events, nested transactions) — the pool reaches
/// a fixed working set once every thread/lock/variable has appeared.
#[test]
fn mixed_workload_reaches_allocation_fixpoint() {
    let cfg = GenConfig {
        seed: 7,
        threads: 8,
        locks: 4,
        vars: 64,
        events: 500_000,
        violation_at: None,
        ..GenConfig::default()
    };
    let (warm, end, events) = allocs_after_warmup(GenSource::new(&cfg), 250_000);
    assert!(events >= 500_000);
    assert_eq!(end, warm, "clock allocations kept growing past warm-up");
}

/// The counters behind the invariant behave sanely: buffers are
/// recycled, assignments share instead of copying, and the cloned
/// baseline (by construction) allocates per transfer edge.
#[test]
fn pool_counters_show_reuse_and_sharing() {
    let cfg = GenConfig { seed: 3, threads: 6, events: 50_000, ..GenConfig::default() };
    let mut pooled = OptimizedChecker::new();
    let mut source = ConvoySource::new(&cfg);
    while let Some(e) = source.next_event().unwrap() {
        pooled.process(e).unwrap();
    }
    let stats = pooled.report().clocks;
    assert!(stats.shares > 0, "assignments must share: {stats:?}");
    assert!(stats.cow_copies > 0, "copies must reuse existing buffers in place: {stats:?}");
    assert!(
        stats.heap_allocs() < 1_000,
        "a 50k-event convoy must stay within a tiny clock working set: {stats:?}"
    );

    let mut cloned = aerodrome::optimized::ClonedOptimizedChecker::new();
    let mut source = ConvoySource::new(&cfg);
    while let Some(e) = source.next_event().unwrap() {
        cloned.process(e).unwrap();
    }
    let baseline = cloned.report().clocks;
    assert!(
        baseline.buffers_allocated > stats.heap_allocs() * 100,
        "the cloned baseline allocates per transfer edge: pooled {stats:?} vs cloned {baseline:?}"
    );
}
