//! **aerodrome-suite** — umbrella crate for the reproduction of
//! *Atomicity Checking in Linear Time using Vector Clocks*
//! (Mathur & Viswanathan, ASPLOS 2020).
//!
//! The workspace is organised as one crate per subsystem; this crate
//! re-exports the public API, hosts the runnable examples and the
//! cross-crate integration tests:
//!
//! * [`vc`] — vector clocks and epochs;
//! * [`tracelog`] — the execution-trace model, `.std` parser, validator,
//!   statistics and the paper's example traces ρ1–ρ4;
//! * [`aerodrome`] — the paper's contribution: three fidelity levels of
//!   the linear-time vector-clock checker (Algorithms 1–3);
//! * [`velodrome`] — the cubic transaction-graph baseline (plus a
//!   DoubleChecker-style two-phase variant);
//! * [`digraph`] — the graph substrate with DFS and Pearce–Kelly cycle
//!   detection;
//! * [`workloads`] — deterministic trace generators and the Table 1/2
//!   benchmark profiles;
//! * [`oracle`] — a quadratic, Definition-1-faithful decision procedure
//!   used as differential-testing ground truth.
//!
//! # Quickstart
//!
//! ```
//! use aerodrome_suite::prelude::*;
//!
//! // Record (or log) an execution trace…
//! let mut tb = TraceBuilder::new();
//! let (t1, t2) = (tb.thread("worker-1"), tb.thread("worker-2"));
//! let balance = tb.var("balance");
//! tb.begin(t1);
//! tb.read(t1, balance); //   t1 reads …
//! tb.begin(t2);
//! tb.write(t2, balance); //  … t2 updates in between …
//! tb.end(t2);
//! tb.write(t1, balance); //  … t1 writes a stale value.
//! tb.end(t1);
//! let trace = tb.finish();
//!
//! // … and check it for conflict-serializability violations online.
//! let mut checker = OptimizedChecker::new();
//! match run_checker(&mut checker, &trace) {
//!     Outcome::Violation(v) => println!("{}", v.display_with(&trace)),
//!     Outcome::Serializable => println!("atomic ✓"),
//! }
//! # assert!(run_checker(&mut OptimizedChecker::new(), &trace).is_violation());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aerodrome;
pub use digraph;
pub use oracle;
pub use scenarios;
pub use tracelog;
pub use vc;
pub use velodrome;
pub use workloads;

pub mod pipeline;

pub use pipeline::{Pipeline, PipelineReport};

/// One-stop imports for the common checking workflow.
pub mod prelude {
    pub use crate::pipeline::par::{check_all, standard_checkers, ParConfig, ParReport};
    pub use crate::pipeline::{Pipeline, PipelineReport};
    pub use aerodrome::basic::BasicChecker;
    pub use aerodrome::optimized::OptimizedChecker;
    pub use aerodrome::readopt::ReadOptChecker;
    pub use aerodrome::{run_checker, Checker, Outcome, Violation, ViolationKind};
    pub use tracelog::stream::{collect_trace, Validated};
    pub use tracelog::{
        parse_trace, validate, write_trace, Event, EventId, EventSource, LockId, MetaInfo, Op,
        SourceError, StdReader, ThreadId, Trace, TraceBuilder, Validator, VarId,
    };
    pub use vc::{Epoch, VectorClock};
    pub use velodrome::VelodromeChecker;
    pub use workloads::{generate, GenConfig, GenSource};
}
