//! Chunk-parallel `.rbt` ingest behind the ordinary [`EventSource`]
//! interface.
//!
//! [`super::par::check_all_chunked`] couples its parallel chunk decode
//! to the multi-checker fan-out loop. This module factors the reader
//! side out: [`ChunkParSource`] owns the claim-a-chunk reader threads
//! and the trace-order restitching, and *presents* the result as a
//! plain [`EventSource`] — so any consumer (the sharded runtime, a
//! single-checker [`super::Pipeline`], `rapid check --ingest-jobs N`)
//! gets parallel decode without knowing about chunks at all.
//!
//! Batches are handed over by swapping arenas (`std::mem::swap`), so
//! the decode output reaches the consumer without copying events; the
//! consumer's previous arena flows back to the readers through an
//! unbounded recycle channel and is reused for the next decode.
//!
//! The fixed-width record layout of the `.rbt` format is what makes
//! the parallel decode sound: a chunk boundary can never split a
//! record, so each reader decodes its chunk with no context from the
//! bytes before it (see `docs/TRACE_FORMAT.md`). Reordering is
//! bounded: a reader stalls (cheap sleep-poll) once it runs more than
//! a small window of chunks ahead of the consumption point, so
//! buffered out-of-order batches stay `O(readers · chunk size)`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use tracelog::binfmt::{BinTrace, MmapSource};
use tracelog::stream::{EventBatch, EventSource, SourceNames};
use tracelog::{Event, EventId, SourceError};

/// One decoded batch in reader → consumer flight, or the decoded
/// prefix of a batch whose tail failed to decode.
enum ChunkMsg {
    Batch(EventBatch),
    Fail(EventBatch, SourceError),
}

/// An [`EventSource`] that decodes an `.rbt` trace with several reader
/// threads and yields the batches in exact trace order.
///
/// With one reader (or a single-chunk trace) prefer a plain
/// [`MmapSource`] — it has no threads to pay for. [`ChunkParSource::new`]
/// does not make that substitution itself so callers keep an honest
/// handle on which path they measured.
#[derive(Debug)]
pub struct ChunkParSource {
    trace: Arc<BinTrace>,
    /// `None` only during teardown ([`Drop`] takes it to unblock
    /// readers parked in `send`).
    data_rx: Option<Receiver<(usize, usize, ChunkMsg)>>,
    recycle_tx: Sender<EventBatch>,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
    /// Out-of-order batches parked until their turn, keyed by
    /// `(chunk, sub-batch)`.
    pending: BTreeMap<(usize, usize), ChunkMsg>,
    /// The next `(chunk, sub-batch)` to hand out.
    next: (usize, usize),
    /// Sub-batches each chunk decodes into, derived from the chunk
    /// index alone so the expected sequence needs no side channel.
    subs: Vec<usize>,
    consumed: Arc<AtomicUsize>,
    done: bool,
    /// Per-event adapter state ([`EventSource::next_event`]): the batch
    /// being walked, the walk cursor, and an error held back until the
    /// decoded prefix before it has been yielded.
    carry: EventBatch,
    cursor: usize,
    carry_err: Option<SourceError>,
}

impl std::fmt::Debug for ChunkMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChunkMsg::Batch(b) => write!(f, "Batch({} events)", b.len()),
            ChunkMsg::Fail(b, e) => write!(f, "Fail({} events, {e})", b.len()),
        }
    }
}

impl ChunkParSource {
    /// Spawns `readers` decode threads over `trace`, each claiming
    /// chunks off the shared index and decoding them into batches of
    /// `batch_events` events.
    ///
    /// `readers` is clamped to the trace's chunk count and to at least
    /// one. For bit-identical hand-off granularity, consumers should
    /// refill with the same `batch_events` they pass here (the swap
    /// hand-off makes the *producer's* size the one that matters).
    #[must_use]
    pub fn new(trace: Arc<BinTrace>, readers: usize, batch_events: usize) -> Self {
        let chunk_count = trace.chunks().len();
        let readers = readers.clamp(1, chunk_count.max(1));
        // How far (in chunks) a reader may run ahead of the consumer:
        // enough that no reader idles while the window holds undecoded
        // chunks, small enough to bound reordering memory.
        let window = readers * 2 + 2;
        let subs: Vec<usize> = trace
            .chunks()
            .iter()
            .map(|c| (c.events as usize).div_ceil(batch_events.max(1)))
            .collect();
        let claim = Arc::new(AtomicUsize::new(0));
        let consumed = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let (recycle_tx, recycle_rx) = mpsc::channel::<EventBatch>();
        let recycle_rx = Arc::new(Mutex::new(recycle_rx));
        let (data_tx, data_rx) = mpsc::sync_channel::<(usize, usize, ChunkMsg)>(readers * 2);
        let mut handles = Vec::with_capacity(readers);
        for _ in 0..readers {
            let trace = Arc::clone(&trace);
            let data_tx = data_tx.clone();
            let claim = Arc::clone(&claim);
            let consumed = Arc::clone(&consumed);
            let stop = Arc::clone(&stop);
            let recycle_rx = Arc::clone(&recycle_rx);
            handles.push(thread::spawn(move || {
                reader(
                    &trace,
                    &data_tx,
                    &claim,
                    &consumed,
                    &stop,
                    &recycle_rx,
                    batch_events,
                    window,
                );
            }));
        }
        drop(data_tx); // readers hold the only senders
        Self {
            trace,
            data_rx: Some(data_rx),
            recycle_tx,
            stop,
            handles,
            pending: BTreeMap::new(),
            next: (0, 0),
            subs,
            consumed,
            done: false,
            carry: EventBatch::default(),
            cursor: 0,
            carry_err: None,
        }
    }

    /// Reader threads spawned (after clamping).
    #[must_use]
    pub fn readers(&self) -> usize {
        self.handles.len()
    }

    /// Advances the expected `(chunk, sub)` cursor, skipping chunks
    /// that decode into zero batches and bumping the consumption point
    /// readers stall against.
    fn advance(&mut self) {
        self.next.1 += 1;
        while self.next.0 < self.subs.len() && self.next.1 >= self.subs[self.next.0] {
            self.next = (self.next.0 + 1, 0);
            self.consumed.fetch_add(1, Ordering::Release);
        }
    }
}

/// One reader thread: claim a chunk, decode it to sub-batches, ship
/// them tagged with their trace-order key.
#[allow(clippy::too_many_arguments)]
fn reader(
    trace: &Arc<BinTrace>,
    data_tx: &mpsc::SyncSender<(usize, usize, ChunkMsg)>,
    claim: &AtomicUsize,
    consumed: &AtomicUsize,
    stop: &AtomicBool,
    recycle_rx: &Mutex<Receiver<EventBatch>>,
    batch_events: usize,
    window: usize,
) {
    let chunk_count = trace.chunks().len();
    let mut source: Option<MmapSource> = None;
    while !stop.load(Ordering::Relaxed) {
        let chunk = claim.fetch_add(1, Ordering::Relaxed);
        if chunk >= chunk_count {
            break;
        }
        // Stay within the reordering window of the consumer; teardown
        // raises `stop`, so this cannot spin forever.
        while chunk >= consumed.load(Ordering::Acquire) + window {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            thread::sleep(Duration::from_micros(100));
        }
        let src = match &mut source {
            Some(src) => {
                src.reset_to_chunk(chunk);
                src
            }
            None => source.get_or_insert(MmapSource::for_chunk(Arc::clone(trace), chunk)),
        };
        let mut sub = 0;
        loop {
            let mut batch = recycle_rx
                .lock()
                .expect("recycle receiver lock")
                .try_recv()
                .unwrap_or_else(|_| EventBatch::with_target(batch_events));
            match src.next_batch(&mut batch) {
                Ok(0) => break,
                Ok(_) => {
                    if data_tx.send((chunk, sub, ChunkMsg::Batch(batch))).is_err() {
                        return; // consumer gone
                    }
                    sub += 1;
                }
                Err(e) => {
                    // The decoded prefix rides along, exactly as a
                    // single-reader refill would leave it.
                    let _ = data_tx.send((chunk, sub, ChunkMsg::Fail(batch, e)));
                    return;
                }
            }
        }
    }
}

impl EventSource for ChunkParSource {
    /// Per-event view over the same in-order stream, for consumers that
    /// step one event at a time. Don't interleave with
    /// [`EventSource::next_batch`] calls on the same source — each mode
    /// assumes it owns the cursor.
    ///
    /// # Errors
    ///
    /// As [`EventSource::next_batch`], after the decoded prefix before
    /// the failure has been yielded (per-event-identical semantics).
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        loop {
            if self.cursor < self.carry.len() {
                let event = self.carry.events()[self.cursor];
                self.cursor += 1;
                return Ok(Some(event));
            }
            if let Some(e) = self.carry_err.take() {
                return Err(e);
            }
            let mut batch = std::mem::take(&mut self.carry);
            self.cursor = 0;
            let refill = self.next_batch(&mut batch);
            self.carry = batch;
            match refill {
                Ok(0) => return Ok(None),
                Ok(_) => {}
                Err(e) => self.carry_err = Some(e),
            }
        }
    }

    /// The next in-order batch, swapped in from the reader that decoded
    /// it; the caller's previous arena is recycled to the readers.
    ///
    /// # Errors
    ///
    /// The first decode failure in trace order, surfaced on the call
    /// that reaches it with the failing batch's decoded prefix left in
    /// `batch` (the [`EventSource`] contract). Later calls report
    /// end-of-stream.
    fn next_batch(&mut self, batch: &mut EventBatch) -> Result<usize, SourceError> {
        batch.clear();
        if self.done || self.next.0 >= self.subs.len() {
            return Ok(0);
        }
        let msg = loop {
            if let Some(msg) = self.pending.remove(&self.next) {
                break msg;
            }
            let rx = self.data_rx.as_ref().expect("readers live until drop");
            match rx.recv() {
                Ok((chunk, sub, msg)) if (chunk, sub) == self.next => break msg,
                Ok((chunk, sub, msg)) => {
                    self.pending.insert((chunk, sub), msg);
                }
                // All readers gone with batches outstanding: a reader
                // panicked. Surface end-of-stream; the consumer's
                // verdict over the prefix stands.
                Err(_) => {
                    self.done = true;
                    return Ok(0);
                }
            }
        };
        match msg {
            ChunkMsg::Batch(mut decoded) => {
                std::mem::swap(batch, &mut decoded);
                let _ = self.recycle_tx.send(decoded); // arena back to the readers
                self.advance();
                Ok(batch.len())
            }
            ChunkMsg::Fail(mut prefix, e) => {
                std::mem::swap(batch, &mut prefix);
                self.done = true;
                Err(e)
            }
        }
    }

    fn names(&self) -> SourceNames<'_> {
        self.trace.names()
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.trace.event_count())
    }

    /// Record positions, as [`MmapSource`] reports them.
    fn position_of(&self, event: EventId) -> Option<String> {
        let record = event.index() as u64;
        (record < self.trace.event_count())
            .then(|| format!("record {record} (chunk {})", self.trace.chunk_of(record)))
    }
}

impl Drop for ChunkParSource {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        drop(self.data_rx.take()); // unblocks any reader mid-send
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::File;
    use std::io::{BufWriter, Write as _};
    use tracelog::binfmt::write_binary;
    use tracelog::Op;
    use workloads::{GenConfig, GenSource};

    fn small_rbt(name: &str, chunk_events: u32) -> Arc<BinTrace> {
        let cfg = GenConfig { threads: 4, vars: 16, locks: 2, events: 600, ..GenConfig::default() };
        let dir = std::env::temp_dir().join("rapid-chunkpar-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("{name}.rbt"));
        let mut out = BufWriter::new(File::create(&path).expect("create .rbt"));
        write_binary(&mut GenSource::new(&cfg), &mut out, chunk_events).expect("write .rbt");
        out.flush().expect("flush .rbt");
        Arc::new(BinTrace::open(&path).expect("reopen .rbt"))
    }

    #[test]
    fn parallel_readers_yield_the_exact_event_sequence() {
        let trace = small_rbt("sequence", 64);
        assert!(trace.chunks().len() > 4, "trace must span several chunks");
        let mut expected = Vec::new();
        let mut single = MmapSource::new(Arc::clone(&trace));
        let mut batch = EventBatch::with_target(50);
        while single.next_batch(&mut batch).expect("decode") > 0 {
            expected.extend_from_slice(batch.events());
        }
        for readers in [1, 2, 3, 7] {
            let mut par = ChunkParSource::new(Arc::clone(&trace), readers, 50);
            let mut got = Vec::new();
            let mut batch = EventBatch::with_target(50);
            while par.next_batch(&mut batch).expect("decode") > 0 {
                got.extend_from_slice(batch.events());
            }
            assert_eq!(got.len(), expected.len(), "{readers} readers: length");
            assert!(got == expected, "{readers} readers: event sequence");
        }
    }

    #[test]
    fn names_and_size_hint_come_from_the_trace() {
        let trace = small_rbt("names", 128);
        let src = ChunkParSource::new(Arc::clone(&trace), 2, 64);
        assert_eq!(src.size_hint(), Some(trace.event_count()));
        assert_eq!(src.names().threads.len(), 4);
        assert!(src.position_of(EventId(0)).expect("record 0").contains("record 0"));
    }

    #[test]
    fn early_drop_tears_readers_down() {
        let trace = small_rbt("teardown", 32);
        let mut par = ChunkParSource::new(trace, 4, 16);
        let mut batch = EventBatch::with_target(16);
        let _ = par.next_batch(&mut batch).expect("first batch");
        assert!(matches!(batch.events().first().map(|e| e.op), Some(Op::Fork(_) | Op::Begin)));
        drop(par); // must join promptly with most of the trace unread
    }
}
