//! The streaming analysis pipeline: source → validator → checker.
//!
//! This is the one event path of the suite. A [`Pipeline`] composes any
//! [`EventSource`] (an incremental `.std` parse, an in-memory trace, a
//! lazy workload generator) with the optional online well-formedness
//! validator and drives any [`Checker`] — or the Velodrome two-phase
//! analysis — over it. With a streaming source the whole run is constant
//! memory: no `Trace` is ever materialised, which is what lets 10⁶–10⁷
//! event logs exercise the paper's linear-time claim for real.
//!
//! Ingestion is batch-oriented: the pipeline pulls arena-backed
//! [`EventBatch`]es and walks them event-by-event, so boxed sources
//! cost one virtual call per ~4096 events. The [`par`] submodule builds
//! on the same seam to fan **one** ingest pass out to many checkers on
//! worker threads, and the [`multi`] submodule lifts the discipline one
//! level up: a corpus scheduler driving an unbounded stream of traces
//! through *resident* checker sessions (`rapid batch`) — see their
//! docs.
//!
//! Validation is **on by default**: the checkers assume the Section 2
//! well-formedness conditions, so verdicts on ill-formed traces are
//! meaningless. Opt out with [`Pipeline::validate`] when the input is
//! already trusted (e.g. it came from our own generator).
//!
//! # Examples
//!
//! Check a `.std` log straight from a reader, in constant memory:
//!
//! ```
//! use aerodrome_suite::pipeline::Pipeline;
//! use aerodrome_suite::prelude::*;
//! use tracelog::stream::StdReader;
//!
//! // t1's transaction reads `x`, t2 overwrites it, t1 writes it back:
//! // not conflict serializable (the ρ2 shape of Figure 2).
//! let log = "t1|begin|0\nt1|r(x)|1\nt2|w(x)|2\nt1|w(x)|3\nt1|end|4\n";
//!
//! let mut pipeline = Pipeline::new(StdReader::new(log.as_bytes()));
//! let mut checker = OptimizedChecker::new();
//! let report = pipeline.run(&mut checker)?;
//!
//! assert!(report.outcome.is_violation());
//! let names = pipeline.source().names();
//! let v = report.outcome.violation().unwrap();
//! assert!(v.display_with_names(&names).contains("`x`"));
//! # Ok::<(), tracelog::SourceError>(())
//! ```

use aerodrome::{Checker, Outcome};
use tracelog::stream::{EventBatch, EventSource, DEFAULT_BATCH_EVENTS};
use tracelog::{SourceError, Trace, Validator, ValiditySummary};
use velodrome::twophase::TwoPhaseReport;
use velodrome::Config as VelodromeConfig;

pub mod adversarial;
pub mod affinity;
pub mod chunkpar;
pub mod multi;
pub mod par;
pub mod shard;

/// One ingest step's validation, shared by the [`par`] fan-out, the
/// [`multi`] corpus scheduler and the serving runtime so their
/// valid-prefix semantics cannot drift: runs the validator over `batch`
/// in order and, at the first ill-formed event, truncates the batch to
/// the well-formed prefix and returns the error. The contract all the
/// runtimes rely on — checkers see exactly the events per-event
/// iteration would have yielded before the failure — lives here once.
pub fn validate_batch(
    validator: &mut Validator,
    batch: &mut EventBatch,
) -> Option<tracelog::WellFormedError> {
    for (i, &event) in batch.events().iter().enumerate() {
        if let Err(e) = validator.observe(event) {
            batch.truncate(i);
            return Some(e);
        }
    }
    None
}

/// One batch's worth of the resident worker loop, shared by the
/// [`multi`] corpus scheduler and the serving runtime: feeds `batch` to
/// every checker of a panel that has not already fired, latching each
/// checker's first [`aerodrome::Violation`] into its `violations`
/// slot. A checker
/// that fires *during this call* is reported through `on_violation`
/// with its panel index — the hook the service uses to push a verdict
/// frame back to the client mid-stream, the moment the online checker
/// detects it, rather than at EOF.
///
/// Semantics match [`par::check_all`] and single-checker
/// [`Pipeline::run`] exactly: every checker stops individually at its
/// first violation and sees every event up to it in trace order, so a
/// panel fed batch-by-batch through this function produces verdicts
/// bit-identical to fresh one-shot runs.
///
/// # Panics
///
/// Panics if `violations.len() != checkers.len()`.
pub fn feed_panel(
    checkers: &mut [par::SendChecker],
    violations: &mut [Option<aerodrome::Violation>],
    batch: &EventBatch,
    mut on_violation: impl FnMut(usize, &aerodrome::Violation),
) {
    assert_eq!(checkers.len(), violations.len(), "one violation slot per checker");
    for (i, (checker, violation)) in checkers.iter_mut().zip(violations.iter_mut()).enumerate() {
        if violation.is_some() {
            continue;
        }
        for &event in batch.events() {
            if let Err(v) = checker.process(event) {
                on_violation(i, &v);
                *violation = Some(v);
                break;
            }
        }
    }
}

/// The outcome of a [`Pipeline::run`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PipelineReport {
    /// The checker's verdict on the streamed prefix.
    pub outcome: Outcome,
    /// Events fed to the checker (the violating event included).
    pub events: u64,
    /// Residual open transactions / held locks observed by the validator
    /// over the processed prefix; `None` when validation was disabled.
    pub summary: Option<ValiditySummary>,
}

/// The outcome of a [`Pipeline::run_twophase`].
#[derive(Clone, Debug)]
pub struct TwoPhaseRun {
    /// Phase-1/phase-2 report (identical verdict to single-pass
    /// Velodrome).
    pub report: TwoPhaseReport,
    /// The materialised trace the two passes ran over (two-phase
    /// analysis inherently replays a prefix, so it cannot stream).
    pub trace: Trace,
    /// Validator residue, as in [`PipelineReport::summary`].
    pub summary: Option<ValiditySummary>,
}

/// Builder composing an event source, the optional streaming validator
/// and a checker into one run.
#[derive(Debug)]
pub struct Pipeline<S> {
    source: S,
    validate: bool,
    batch_events: usize,
}

impl<S: EventSource> Pipeline<S> {
    /// Starts a pipeline over `source` with validation enabled.
    #[must_use]
    pub fn new(source: S) -> Self {
        Self { source, validate: true, batch_events: DEFAULT_BATCH_EVENTS }
    }

    /// Enables or disables the online well-formedness stage (default:
    /// enabled).
    #[must_use]
    pub fn validate(mut self, on: bool) -> Self {
        self.validate = on;
        self
    }

    /// Sets the events pulled per source refill (default
    /// [`DEFAULT_BATCH_EVENTS`]) — the same knob as `rapid`'s uniform
    /// `--batch` flag and [`par::ParConfig::batch_events`]. Semantics
    /// never depend on it; only the call granularity does.
    ///
    /// # Panics
    ///
    /// Panics if `events == 0`.
    #[must_use]
    pub fn batch_events(mut self, events: usize) -> Self {
        assert!(events > 0, "batch size must be positive");
        self.batch_events = events;
        self
    }

    /// The underlying source — use after a run to reach the name tables
    /// for rendering verdicts.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Unwraps the pipeline back into its source.
    pub fn into_source(self) -> S {
        self.source
    }

    /// Streams every event through the validator (if enabled) into
    /// `checker`, stopping at the first violation.
    ///
    /// # Errors
    ///
    /// Propagates source failures; an ill-formed event surfaces as
    /// [`SourceError::Malformed`] before the checker sees it.
    pub fn run<C: Checker + ?Sized>(
        &mut self,
        checker: &mut C,
    ) -> Result<PipelineReport, SourceError> {
        // Batch-driven since the parallel-runtime refactor: the source
        // refills one arena-backed batch per pull, so a boxed source
        // costs one virtual call per ~4096 events. Event-level semantics
        // are unchanged — validator and checker still see every event in
        // order, and a violation or error surfaces at the same event as
        // per-event iteration would (a source error only surfaces after
        // the events preceding it have been processed).
        let mut validator = self.validate.then(Validator::new);
        let mut events = 0u64;
        let mut batch = EventBatch::with_target(self.batch_events);
        loop {
            let refill = self.source.next_batch(&mut batch);
            for &event in batch.events() {
                if let Some(v) = validator.as_mut() {
                    v.observe(event)?;
                }
                events += 1;
                if let Err(violation) = checker.process(event) {
                    return Ok(PipelineReport {
                        outcome: Outcome::Violation(violation),
                        events,
                        summary: validator.map(Validator::finish),
                    });
                }
            }
            if refill? == 0 {
                break;
            }
        }
        Ok(PipelineReport {
            outcome: Outcome::Serializable,
            events,
            summary: validator.map(Validator::finish),
        })
    }

    /// Drains the source (validating by default) into an in-memory
    /// [`Trace`] — the bridge to the analyses that genuinely need random
    /// access (the quadratic oracle, two-phase replay). Batch-driven
    /// like [`Pipeline::run`]: events preceding a failure are collected,
    /// then the error surfaces.
    ///
    /// # Errors
    ///
    /// Propagates source failures and validation rejections.
    pub fn collect(&mut self) -> Result<(Trace, Option<ValiditySummary>), SourceError> {
        let mut validator = self.validate.then(Validator::new);
        let mut events = Vec::new();
        if let Some(n) = self.source.size_hint() {
            events.reserve(usize::try_from(n).unwrap_or(0));
        }
        let mut batch = EventBatch::with_target(self.batch_events);
        loop {
            let refill = self.source.next_batch(&mut batch);
            for &event in batch.events() {
                if let Some(v) = validator.as_mut() {
                    v.observe(event)?;
                }
                events.push(event);
            }
            if refill? == 0 {
                break;
            }
        }
        let names = self.source.names();
        let trace = Trace::from_parts(
            events,
            names.threads.clone(),
            names.locks.clone(),
            names.vars.clone(),
        );
        Ok((trace, validator.map(Validator::finish)))
    }

    /// Runs the DoubleChecker-style two-phase Velodrome analysis; the
    /// phase-1 batch size comes from
    /// [`Config::twophase_batch`](velodrome::Config::twophase_batch).
    ///
    /// # Errors
    ///
    /// Propagates source failures and validation rejections.
    pub fn run_twophase(&mut self, config: &VelodromeConfig) -> Result<TwoPhaseRun, SourceError> {
        let (trace, summary) = self.collect()?;
        let report = velodrome::twophase::check(&trace, config);
        Ok(TwoPhaseRun { report, trace, summary })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerodrome::optimized::OptimizedChecker;
    use aerodrome::run_checker;
    use tracelog::paper_traces;
    use tracelog::stream::StdReader;

    #[test]
    fn run_matches_run_checker_on_paper_traces() {
        for trace in
            [paper_traces::rho1(), paper_traces::rho2(), paper_traces::rho3(), paper_traces::rho4()]
        {
            let batch = run_checker(&mut OptimizedChecker::new(), &trace);
            let mut pipeline = Pipeline::new(trace.stream());
            let report = pipeline.run(&mut OptimizedChecker::new()).unwrap();
            assert_eq!(report.outcome, batch);
        }
    }

    #[test]
    fn validation_rejects_ill_formed_input_before_the_checker() {
        let log = "t1|rel(m)|0\n";
        let mut pipeline = Pipeline::new(StdReader::new(log.as_bytes()));
        let err = pipeline.run(&mut OptimizedChecker::new()).unwrap_err();
        assert!(matches!(err, SourceError::Malformed(_)), "{err}");

        let mut pipeline = Pipeline::new(StdReader::new(log.as_bytes())).validate(false);
        let report = pipeline.run(&mut OptimizedChecker::new()).unwrap();
        assert!(report.summary.is_none());
    }

    #[test]
    fn collect_reproduces_the_trace() {
        let trace = paper_traces::rho2();
        let (collected, summary) = Pipeline::new(trace.stream()).collect().unwrap();
        assert_eq!(collected.events(), trace.events());
        assert!(summary.unwrap().is_closed());
    }

    #[test]
    fn twophase_run_agrees_with_direct_check() {
        let trace = paper_traces::rho2();
        let config = velodrome::Config::default();
        let direct = velodrome::twophase::check(&trace, &config);
        let run = Pipeline::new(trace.stream()).run_twophase(&config).unwrap();
        assert_eq!(run.report, direct);
        assert_eq!(run.trace.len(), trace.len());
    }
}
