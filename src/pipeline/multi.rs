//! The resident multi-trace runtime: one process, many traces, zero
//! steady-state construction.
//!
//! [`super::par`] parallelises *within* one trace (one ingest pass
//! fanned out to N checkers); this module parallelises *across* traces.
//! A [`check_corpus`] call discovers a corpus of `.std` / `.rbt` logs
//! (directory walk or manifest, see [`discover`]), dispatches whole
//! traces to at most [`MultiConfig::jobs`] resident workers over a
//! shared queue, and
//! aggregates per-trace verdicts plus corpus-level
//! [`CheckerReport`] totals.
//!
//! The point is the *resident session*: each worker constructs its
//! checker panel, its `.std` reader and its validator **once** and
//! reuses them trace after trace through the session seams added for
//! this runtime — [`aerodrome::Checker::reset`] (clock pools keep their
//! recycled buffers, capped by
//! [`aerodrome::state::DEFAULT_RETAINED_CLOCK_BYTES`]),
//! [`StdReader::reset`] (warm interner and line buffers) and
//! [`Validator::reset`]. Once a worker is warm, checking the next trace
//! performs zero clock heap allocations — the within-trace invariant of
//! `tests/pool_alloc.rs`, lifted across traces (asserted in
//! `tests/session_reuse.rs`). Verdicts and per-trace report counters
//! are bit-identical to constructing a fresh checker per trace.
//!
//! Scheduling follows the one-dispatcher/worker-owned-state shape of
//! McKenney's parallel-programming playbook: traces are claimed off one
//! atomic cursor (dynamic load balancing — trace sizes vary wildly),
//! every worker owns its sessions outright, and nothing is shared but
//! the read-only path list.
//!
//! # Examples
//!
//! ```no_run
//! use aerodrome_suite::pipeline::multi::{check_corpus, discover, MultiConfig};
//! use aerodrome_suite::pipeline::par::standard_checkers;
//!
//! let paths = discover("corpus/".as_ref())?;
//! let report = check_corpus(&paths, standard_checkers, &MultiConfig::default());
//! for trace in &report.traces {
//!     println!("{}: {} events", trace.path.display(), trace.events);
//! }
//! assert_eq!(report.traces.len(), paths.len());
//! # Ok::<(), String>(())
//! ```

use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use aerodrome::{CheckerReport, Outcome, Violation};
use tracelog::binfmt::MmapSource;
use tracelog::stream::{EventBatch, StdReader, DEFAULT_BATCH_EVENTS};
use tracelog::{EventSource, Validator};

use super::par::{CheckerRun, SendChecker};

/// Tuning knobs of the corpus scheduler.
#[derive(Clone, Debug)]
pub struct MultiConfig {
    /// Resident workers; `0` (the default) means one per available CPU,
    /// capped at the corpus size.
    pub jobs: usize,
    /// Events per [`EventBatch`] refill (default
    /// [`DEFAULT_BATCH_EVENTS`]).
    pub batch_events: usize,
    /// Run the online well-formedness validator per trace (default
    /// `true`, matching the single-trace pipelines).
    pub validate: bool,
}

impl Default for MultiConfig {
    fn default() -> Self {
        Self { jobs: 0, batch_events: DEFAULT_BATCH_EVENTS, validate: true }
    }
}

impl MultiConfig {
    /// Sets the worker count (`0` = one per available CPU).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the per-refill batch size.
    ///
    /// # Panics
    ///
    /// Panics if `events == 0`.
    #[must_use]
    pub fn batch_events(mut self, events: usize) -> Self {
        assert!(events > 0, "batch size must be positive");
        self.batch_events = events;
        self
    }

    /// Enables or disables the per-trace validator.
    #[must_use]
    pub fn validate(mut self, on: bool) -> Self {
        self.validate = on;
        self
    }

    /// The worker count actually used for a corpus of `traces` traces.
    #[must_use]
    pub fn effective_jobs(&self, traces: usize) -> usize {
        let auto = if self.jobs == 0 {
            thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
        } else {
            self.jobs
        };
        auto.min(traces).max(1)
    }
}

/// One trace's end-to-end result out of a corpus run.
#[derive(Clone, Debug)]
pub struct TraceRun {
    /// Position in the discovered corpus (reports are returned in this
    /// order regardless of which worker ran the trace when).
    pub index: usize,
    /// The trace log's path.
    pub path: PathBuf,
    /// Events ingested (on error: the well-formed prefix).
    pub events: u64,
    /// Distinct thread names seen.
    pub threads: usize,
    /// Distinct lock names seen.
    pub locks: usize,
    /// Distinct variable names seen.
    pub vars: usize,
    /// Per-checker verdicts in panel order — bit-identical to running a
    /// fresh checker panel over this trace alone.
    pub runs: Vec<CheckerRun>,
    /// Open/parse/validation failure, with the offending line when known.
    /// The `runs` then cover the prefix before the failure.
    pub error: Option<String>,
    /// Wall time this trace took on its worker.
    pub wall: Duration,
}

impl TraceRun {
    /// Whether any checker reported a violation.
    #[must_use]
    pub fn any_violation(&self) -> bool {
        self.runs.iter().any(|r| r.outcome.is_violation())
    }
}

/// The outcome of [`check_corpus`].
#[derive(Clone, Debug)]
pub struct CorpusReport {
    /// Per-trace results, in discovery order.
    pub traces: Vec<TraceRun>,
    /// Resident workers used.
    pub workers: usize,
    /// End-to-end wall time of the whole corpus.
    pub wall: Duration,
}

impl CorpusReport {
    /// Total events ingested over the corpus.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.traces.iter().map(|t| t.events).sum()
    }

    /// Number of traces on which at least one checker reported a
    /// violation.
    #[must_use]
    pub fn violations(&self) -> usize {
        self.traces.iter().filter(|t| t.any_violation()).count()
    }

    /// Number of traces that failed to ingest (open/parse/validation).
    #[must_use]
    pub fn errors(&self) -> usize {
        self.traces.iter().filter(|t| t.error.is_some()).count()
    }

    /// Corpus-level totals per panel position: per-trace events and
    /// clock-join counters summed, clock-storage counters summed, the
    /// point-in-time gauges (`retained_bytes`, slot counts) taken at
    /// their maximum — the resident footprint high-water mark.
    #[must_use]
    pub fn checker_totals(&self) -> Vec<CheckerReport> {
        let mut totals: Vec<CheckerReport> = Vec::new();
        for trace in &self.traces {
            for (i, run) in trace.runs.iter().enumerate() {
                if totals.len() <= i {
                    totals.push(CheckerReport { name: run.name, ..CheckerReport::default() });
                }
                let t = &mut totals[i];
                t.events += run.report.events;
                t.clock_joins += run.report.clock_joins;
                t.clocks.accumulate(&run.report.clocks);
            }
        }
        totals
    }
}

/// Discovers the traces of a corpus — text `.std` and binary `.rbt`
/// alike.
///
/// * A **directory** is walked recursively; every `*.std` and `*.rbt`
///   file is collected, sorted by path for a deterministic order.
/// * A file named `*.std` or `*.rbt` is a single-trace corpus.
/// * Any **other file** is read as a manifest: one trace path per line
///   (relative paths resolve against the manifest's directory), blank
///   lines and `#` comments skipped, order preserved.
///
/// # Errors
///
/// Reports unreadable paths and empty corpora as display strings.
pub fn discover(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut paths = Vec::new();
    if root.is_dir() {
        walk(root, &mut paths).map_err(|e| format!("{}: {e}", root.display()))?;
        paths.sort();
    } else if root.extension().is_some_and(|e| e == "std" || e == "rbt") {
        if !root.is_file() {
            return Err(format!("{}: no such trace", root.display()));
        }
        paths.push(root.to_path_buf());
    } else {
        let text = std::fs::read_to_string(root).map_err(|e| format!("{}: {e}", root.display()))?;
        let base = root.parent().unwrap_or_else(|| Path::new("."));
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let p = Path::new(line);
            paths.push(if p.is_absolute() { p.to_path_buf() } else { base.join(p) });
        }
    }
    if paths.is_empty() {
        return Err(format!("{}: no .std or .rbt traces found", root.display()));
    }
    Ok(paths)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "std" || e == "rbt") {
            out.push(path);
        }
    }
    Ok(())
}

/// Reads the first 8 bytes of `file` and rewinds, reporting whether
/// they are the `.rbt` magic.
fn sniff_binary(file: &mut File) -> std::io::Result<bool> {
    use std::io::{Read, Seek, SeekFrom};
    let mut magic = [0u8; 8];
    let mut filled = 0;
    while filled < magic.len() {
        let n = file.read(&mut magic[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    file.seek(SeekFrom::Start(0))?;
    Ok(filled == magic.len() && magic == tracelog::binfmt::MAGIC)
}

/// One trace's ingest-and-feed loop, shared by the text and binary
/// paths: drains `source` batch by batch, validating (when a validator
/// is supplied) and feeding the panel, matching `par::check_all`
/// semantics exactly — the whole log is drained (the run certifies it)
/// and each checker stops individually at its first violation. Returns
/// the events ingested; failures land in `error` with the source's own
/// position attribution (`line N` / `record N (chunk C)`).
fn ingest_one<S: EventSource + ?Sized>(
    source: &mut S,
    checkers: &mut [SendChecker],
    violations: &mut [Option<Violation>],
    batch: &mut EventBatch,
    mut validator: Option<&mut Validator>,
    path: &Path,
    error: &mut Option<String>,
) -> u64 {
    let mut events = 0u64;
    loop {
        let refill = source.next_batch(batch);
        if let Some(v) = validator.as_deref_mut() {
            if let Some(e) = super::validate_batch(v, batch) {
                let pos =
                    source.position_of(e.event()).map_or_else(String::new, |p| format!("{p}: "));
                *error = Some(format!("{}: {pos}not well-formed: {e}", path.display()));
            }
        }
        super::feed_panel(checkers, violations, batch, |_, _| {});
        events += batch.len() as u64;
        let exhausted = match refill {
            // A validation failure inside the batch precedes a source
            // failure past its end; keep the earlier one.
            Err(e) if error.is_none() => {
                *error = Some(format!("{}: {e}", path.display()));
                true
            }
            Err(_) => true,
            Ok(n) => n == 0 || error.is_some(),
        };
        if exhausted {
            return events;
        }
    }
}

/// One worker's resident state: the checker panel, the reader and the
/// validator, constructed once and reset between traces.
struct Session {
    checkers: Vec<SendChecker>,
    reader: Option<StdReader<BufReader<File>>>,
    batch: EventBatch,
    validator: Validator,
    validate: bool,
}

impl Session {
    fn run_trace(&mut self, index: usize, path: &Path) -> TraceRun {
        let started = Instant::now();
        // Reset *before* running (not after): idempotent, and it holds
        // even when the previous trace aborted mid-ingest on an error.
        for checker in &mut self.checkers {
            checker.reset();
        }
        self.validator.reset();
        let mut violations: Vec<Option<Violation>> = vec![None; self.checkers.len()];
        let mut events = 0u64;
        let mut error = None;
        let (mut threads, mut locks, mut vars) = (0, 0, 0);

        let file = match File::open(path) {
            Ok(f) => Some(f),
            Err(e) => {
                error = Some(format!("{}: {e}", path.display()));
                None
            }
        };
        if let Some(mut file) = file {
            // Sniff the encoding by magic (not extension), as every
            // ingesting subcommand does.
            let binary = match sniff_binary(&mut file) {
                Ok(b) => b,
                Err(e) => {
                    error = Some(format!("{}: {e}", path.display()));
                    false
                }
            };
            if error.is_some() {
                // fall through with the open/sniff error recorded
            } else if binary {
                // Binary traces get a per-trace reader: opening one is a
                // footer read, a name preload and an mmap — there is no
                // warm parser state worth keeping resident.
                drop(file);
                match MmapSource::open(path) {
                    Ok(mut source) => {
                        events = ingest_one(
                            &mut source,
                            &mut self.checkers,
                            &mut violations,
                            &mut self.batch,
                            self.validate.then_some(&mut self.validator),
                            path,
                            &mut error,
                        );
                        let names = source.names();
                        (threads, locks, vars) =
                            (names.threads.len(), names.locks.len(), names.vars.len());
                    }
                    Err(e) => error = Some(format!("{}: {e}", path.display())),
                }
            } else {
                // The reader session survives from the previous trace:
                // reset keeps the interner and line-buffer capacity warm.
                let reader = match self.reader.take() {
                    Some(mut r) => {
                        r.reset(BufReader::new(file));
                        r
                    }
                    None => StdReader::new(BufReader::new(file)),
                };
                self.reader = Some(reader);
                let reader = self.reader.as_mut().expect("reader installed above");
                events = ingest_one(
                    reader,
                    &mut self.checkers,
                    &mut violations,
                    &mut self.batch,
                    self.validate.then_some(&mut self.validator),
                    path,
                    &mut error,
                );
                // Name counts belong to THIS trace's ingest only: when
                // the open failed, the resident reader still holds the
                // previous trace's warm tables and must not leak into
                // this report.
                let names = reader.names();
                (threads, locks, vars) = (names.threads.len(), names.locks.len(), names.vars.len());
            }
        }

        let runs = self
            .checkers
            .iter()
            .zip(violations)
            .map(|(checker, violation)| CheckerRun {
                name: checker.name(),
                outcome: violation.map_or(Outcome::Serializable, Outcome::Violation),
                report: checker.report(),
            })
            .collect();
        TraceRun {
            index,
            path: path.to_path_buf(),
            events,
            threads,
            locks,
            vars,
            runs,
            error,
            wall: started.elapsed(),
        }
    }
}

/// Checks every trace of `paths` on a pool of resident workers.
///
/// `make_panel` is called once per worker to construct its checker
/// panel (e.g. [`super::par::standard_checkers`]); the panel is then
/// reused for every trace the worker claims, reset between traces.
/// Per-trace failures (unreadable file, parse error, ill-formed events)
/// are recorded in the corresponding [`TraceRun::error`] — they never
/// abort the rest of the corpus.
///
/// # Panics
///
/// Propagates a panic of a checker on a worker thread.
pub fn check_corpus<F>(paths: &[PathBuf], make_panel: F, config: &MultiConfig) -> CorpusReport
where
    F: Fn() -> Vec<SendChecker> + Sync,
{
    let started = Instant::now();
    let workers = config.effective_jobs(paths.len());
    let cursor = AtomicUsize::new(0);
    let mut traces: Vec<TraceRun> = Vec::with_capacity(paths.len());
    thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut session = Session {
                        checkers: make_panel(),
                        reader: None,
                        batch: EventBatch::with_target(config.batch_events),
                        validator: Validator::new(),
                        validate: config.validate,
                    };
                    let mut out = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(path) = paths.get(index) else { break };
                        out.push(session.run_trace(index, path));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(mut runs) => traces.append(&mut runs),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    traces.sort_by_key(|t| t.index);
    CorpusReport { traces, workers, wall: started.elapsed() }
}
