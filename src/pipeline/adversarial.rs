//! Adversarial ingest: feed scenario-engine traces (explored schedules,
//! fuzzing mutants, minimised reproducers) through the *production*
//! pipeline paths rather than the in-memory `run_checker` shortcut.
//!
//! The scenario engine referees its traces in memory; this module
//! closes the loop with the two seams real traces travel through:
//!
//! * [`check_panel`] — the batched parallel fan-out
//!   ([`par::check_all`]) over the standard panel, exactly what
//!   `rapid batch` and the seal machinery run;
//! * [`roundtrip`] — the `.std` text codec (serialise, reparse, and
//!   require the text fixpoint), so every reproducer written to a
//!   fixture file is known to mean what the in-memory trace meant.

use tracelog::{parse_trace, write_trace, SourceError, Trace};

use super::par::{self, ParConfig, ParReport};

/// Runs the standard checker panel (basic, readopt, optimized,
/// velodrome) over `trace` through the batched parallel runtime — the
/// same ingest path as `rapid batch`.
///
/// # Errors
///
/// Returns the [`SourceError`] if `trace` fails validation inside the
/// runtime (adversarial traces are allowed to be prefixes but must be
/// well-formed).
pub fn check_panel(trace: &Trace, config: &ParConfig) -> Result<ParReport, SourceError> {
    par::check_all(&mut trace.stream(), par::standard_checkers(), config)
}

/// Serialises `trace` to `.std` text, reparses it, and checks the text
/// fixpoint (`write(parse(write(t))) == write(t)`), returning the
/// reparsed trace. Identifier numbering may legitimately differ — the
/// parser interns names in first-appearance order while generated
/// traces intern in program order — so fidelity is judged on the text,
/// not on raw ids.
///
/// # Errors
///
/// Returns a description of the divergence if the text fails to reparse
/// or the round-trip is not a fixpoint.
pub fn roundtrip(trace: &Trace) -> Result<Trace, String> {
    let text = write_trace(trace);
    let reparsed = parse_trace(&text).map_err(|e| format!("reparse failed: {e}"))?;
    let again = write_trace(&reparsed);
    if again != text {
        return Err(format!(
            "serialise/parse round-trip diverged:\n--- first\n{text}\n--- second\n{again}"
        ));
    }
    Ok(reparsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scenarios::{builtin, explore, referee, ExploreConfig, RefereeConfig};
    use tracelog::paper_traces;

    /// Every explored schedule of every builtin survives the production
    /// codec and gets the same verdicts from the parallel runtime as
    /// from the in-memory referee.
    #[test]
    fn explored_schedules_agree_across_ingest_paths() {
        let config = ParConfig::default().jobs(2).batch_events(8);
        for (name, _, _) in scenarios::BUILTINS {
            let program = builtin(name).unwrap();
            let report = explore(
                &program,
                &ExploreConfig { max_schedules: 40, samples: 16, ..Default::default() },
            );
            for found in &report.violations {
                let trace = scenarios::schedule_trace(&program, &found.schedule);
                let closed = found.end == scenarios::RunEnd::Complete;
                let reparsed = roundtrip(&trace).unwrap();
                let par = check_panel(&reparsed, &config).unwrap();
                let diff = referee(&trace, closed, &RefereeConfig::default());
                assert_eq!(par.runs.len(), diff.runs.len());
                for (run, (refereed_name, outcome)) in par.runs.iter().zip(&diff.runs) {
                    assert_eq!(
                        run.outcome.is_violation(),
                        outcome.is_violation(),
                        "{name}: {refereed_name} disagrees between ingest paths"
                    );
                }
            }
        }
    }

    #[test]
    fn paper_traces_are_codec_fixpoints() {
        for trace in
            [paper_traces::rho1(), paper_traces::rho2(), paper_traces::rho3(), paper_traces::rho4()]
        {
            let reparsed = roundtrip(&trace).unwrap();
            assert_eq!(reparsed.len(), trace.len());
        }
    }

    /// Deadlock prefixes are well-formed but open; the parallel runtime
    /// must ingest them without error.
    #[test]
    fn deadlock_prefixes_pass_the_production_validator() {
        let program = builtin("deadlock").unwrap();
        let trace = scenarios::schedule_trace(&program, &[0, 1]);
        let report = check_panel(&trace, &ParConfig::default()).unwrap();
        assert_eq!(report.events, 2);
        let summary = report.summary.as_ref().expect("validation is on by default");
        assert!(!summary.is_closed(), "both locks stay held in the deadlock prefix");
    }
}
