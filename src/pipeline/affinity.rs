//! Locality-aware shard partitioning: profile a trace's
//! thread↔lock↔variable access affinity in one streaming pass, then
//! derive an [`Ownership`] that minimizes the predicted cross-shard
//! event rate of the [`shard`](super::shard) runtime.
//!
//! Round-robin ownership routes 40–64% of events cross-shard on the
//! benchmark shapes because it assigns ids blindly: a fanout worker and
//! its private variable usually land on *different* shards, so every
//! access pays a clock-message dialogue. This module is the
//! data-ownership fix (à la McKenney's partition-first design): count
//! who touches what, then co-locate.
//!
//! The pipeline is three steps, each independently usable:
//!
//! 1. [`AffinityProfile`] — a one-pass streaming scan (any
//!    [`EventSource`], or chunk-parallel `.rbt` ingest via
//!    [`profile_chunked`]) accumulating per-thread event weights and
//!    thread↔resource touch counts. No validation, no clocks: the scan
//!    is a counting loop and runs at ingest speed.
//! 2. [`AffinityProfile::partition`] — a greedy/KL-style partitioner:
//!    LPT seeds threads onto shards by weight, then alternating passes
//!    re-place resources with their heaviest-touching shard and migrate
//!    threads to their argmin-cost shard. The cost couples the *exact*
//!    predicted cross-edge count with a soft load-balance penalty
//!    ([`DEFAULT_BALANCE`]), so a convoy (one lock, shared vars — no
//!    separable locality) is allowed to collapse onto one shard rather
//!    than be split badly.
//! 3. [`PartitionPlan`] — the result: per-id shard tables, the
//!    prediction that justified them, and a versioned JSON form
//!    (`rapid partition --out plan.json` ↔ `--partition plan.json`).
//!
//! The prediction is exact, not a heuristic proxy: the profile counts
//! precisely the events the router classifies ([`Ownership::route`]) —
//! acquire/release against the lock's shard, read/write against the
//! variable's, fork/join against the peer thread's — so
//! [`AffinityProfile::evaluate`] returns the same `cross_events` /
//! `global_ends` split that [`ShardStats`](super::shard::ShardStats)
//! reports after a run over the same trace. The differential harness
//! pins the rest: any partition, auto or otherwise, yields bit-identical
//! verdicts.

use std::collections::HashMap;
use std::sync::Arc;

use aerodrome::shard::{EndTracker, Ownership};
use tracelog::binfmt::{BinTrace, MmapSource};
use tracelog::stream::{EventBatch, EventSource};
use tracelog::{Event, Op, SourceError};

/// Default weight of the soft load-balance term in the partitioner
/// cost: a thread pays `balance · w(t) · load(s) · shards / W` to join
/// shard `s`, in units of cross-edges. Small enough that real locality
/// always dominates (a convoy may collapse to one shard), large enough
/// that equally-cross placements spread the load.
pub const DEFAULT_BALANCE: f64 = 0.05;

/// JSON schema tag of a serialized [`PartitionPlan`].
pub const PLAN_SCHEMA: &str = "rapid-partition-v1";

fn id32(index: usize) -> u32 {
    u32::try_from(index).expect("interned index fits u32")
}

/// The access-affinity graph of one trace: per-thread event weights
/// plus weighted thread↔lock, thread↔variable and thread↔thread
/// (fork/join) edges. Build with [`profile_source`] /
/// [`profile_chunked`] or feed events directly via
/// [`observe`](Self::observe).
#[derive(Clone, Debug, Default)]
pub struct AffinityProfile {
    /// Total events observed (what the router would ingest).
    pub events: u64,
    /// Outermost `end` events — these run an all-shard barrier under
    /// *any* partition, so no placement can remove them.
    pub outermost_ends: u64,
    /// Events performed by each thread index (fork/join targets get a
    /// slot even before their first own event).
    pub thread_weight: Vec<u64>,
    /// `(thread, lock) → acquire+release` events of that thread on that
    /// lock.
    pub lock_touch: HashMap<(u32, u32), u64>,
    /// `(thread, var) → read+write` events of that thread on that
    /// variable.
    pub var_touch: HashMap<(u32, u32), u64>,
    /// `(thread, peer) → fork+join` events of `thread` targeting
    /// `peer` (self-targets excluded: the router keeps them local).
    pub thread_pair: HashMap<(u32, u32), u64>,
}

impl AffinityProfile {
    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn bump_weight(&mut self, index: usize) {
        if self.thread_weight.len() <= index {
            self.thread_weight.resize(index + 1, 0);
        }
        self.thread_weight[index] += 1;
    }

    fn ensure_thread(&mut self, index: usize) {
        if self.thread_weight.len() <= index {
            self.thread_weight.resize(index + 1, 0);
        }
    }

    /// Accumulates one event in trace order. `ends` must be the same
    /// tracker across the whole trace — it supplies the
    /// outermost-`end` classification the router uses.
    pub fn observe(&mut self, event: Event, ends: &mut EndTracker) {
        self.events += 1;
        let t = event.thread.index();
        self.bump_weight(t);
        let t32 = id32(t);
        match event.op {
            Op::Acquire(l) | Op::Release(l) => {
                *self.lock_touch.entry((t32, id32(l.index()))).or_insert(0) += 1;
            }
            Op::Read(x) | Op::Write(x) => {
                *self.var_touch.entry((t32, id32(x.index()))).or_insert(0) += 1;
            }
            Op::Fork(u) | Op::Join(u) => {
                self.ensure_thread(u.index());
                if u != event.thread {
                    *self.thread_pair.entry((t32, id32(u.index()))).or_insert(0) += 1;
                }
            }
            Op::Begin | Op::End => {}
        }
        if ends.observe(event) {
            self.outermost_ends += 1;
        }
    }

    /// The exact cross-shard split `own` would produce on the profiled
    /// trace: every touch whose thread and resource shards differ is
    /// one cross event, every outermost end is one global barrier —
    /// precisely the router's classification, so this equals the
    /// measured `ShardStats` of a run (violation-free traces; a run
    /// that stops early routes fewer events).
    #[must_use]
    pub fn evaluate(&self, own: &Ownership) -> CrossPrediction {
        let mut cross = 0u64;
        for (&(t, l), &w) in &self.lock_touch {
            if own.thread_shard(t as usize) != own.lock_shard(l as usize) {
                cross += w;
            }
        }
        for (&(t, x), &w) in &self.var_touch {
            if own.thread_shard(t as usize) != own.var_shard(x as usize) {
                cross += w;
            }
        }
        for (&(t, u), &w) in &self.thread_pair {
            if own.thread_shard(t as usize) != own.thread_shard(u as usize) {
                cross += w;
            }
        }
        CrossPrediction {
            cross_events: cross,
            global_ends: self.outermost_ends,
            total_events: self.events,
        }
    }

    /// [`partition_with_balance`](Self::partition_with_balance) at
    /// [`DEFAULT_BALANCE`].
    #[must_use]
    pub fn partition(&self, shards: usize) -> PartitionPlan {
        self.partition_with_balance(shards, DEFAULT_BALANCE)
    }

    /// Derives a locality-minimizing placement over `shards` shards.
    ///
    /// Greedy/KL-style refinement: threads seed shards LPT-style
    /// (heaviest first onto the least-loaded shard), then three
    /// alternating passes (a) pin every lock/variable to the shard
    /// whose threads touch it most and (b) migrate each thread to the
    /// shard minimizing `cross(t, s) + balance·w(t)·load(s)·shards/W`,
    /// with a final resource pass so every resource sits with its
    /// heaviest partner. Deterministic: all ties break toward the
    /// lowest shard index and adjacency is walked in sorted id order.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn partition_with_balance(&self, shards: usize, balance: f64) -> PartitionPlan {
        assert!(shards >= 1, "at least one shard");
        let adj = Adjacency::build(self);
        let n_threads = self.thread_weight.len();
        let total_weight: u64 = self.thread_weight.iter().sum();

        // Threads heaviest-first (ties: lowest index) — both the LPT
        // seed and the migration passes visit them in this order.
        let mut order: Vec<usize> = (0..n_threads).collect();
        order.sort_by_key(|&t| (std::cmp::Reverse(self.thread_weight[t]), t));

        // LPT seed: each thread onto the least-loaded shard so far.
        let mut thread_shard = vec![0u32; n_threads];
        let mut loads = vec![0u64; shards];
        for &t in &order {
            let s = least_loaded(&loads);
            thread_shard[t] = id32(s);
            loads[s] += self.thread_weight[t];
        }
        let mut lock_shard = vec![0u32; adj.lock_threads.len()];
        let mut var_shard = vec![0u32; adj.var_threads.len()];

        for _ in 0..3 {
            place_resources(&adj.lock_threads, &thread_shard, shards, &mut lock_shard);
            place_resources(&adj.var_threads, &thread_shard, shards, &mut var_shard);
            for &t in &order {
                let w = self.thread_weight[t];
                let cur = thread_shard[t] as usize;
                let cost = |s: usize| {
                    let cross = adj.thread_cross(t, s, &thread_shard, &lock_shard, &var_shard);
                    let load_excl = loads[s] - if cur == s { w } else { 0 };
                    let penalty = if total_weight == 0 {
                        0.0
                    } else {
                        balance * w as f64 * load_excl as f64 * shards as f64 / total_weight as f64
                    };
                    cross as f64 + penalty
                };
                // Strict improvement only: ties prefer staying put,
                // then the lowest index among the better shards.
                let mut best = cur;
                let mut best_cost = cost(cur);
                for s in (0..shards).filter(|&s| s != cur) {
                    let c = cost(s);
                    if c < best_cost {
                        best = s;
                        best_cost = c;
                    }
                }
                if best != cur {
                    loads[cur] -= w;
                    loads[best] += w;
                    thread_shard[t] = id32(best);
                }
            }
        }
        place_resources(&adj.lock_threads, &thread_shard, shards, &mut lock_shard);
        place_resources(&adj.var_threads, &thread_shard, shards, &mut var_shard);

        let mut plan = PartitionPlan {
            shards,
            threads: thread_shard,
            locks: lock_shard,
            vars: var_shard,
            events: self.events,
            outermost_ends: self.outermost_ends,
            predicted_cross: 0,
        };
        plan.predicted_cross = self.evaluate(&plan.ownership()).cross_events;
        plan
    }
}

/// Index of the least-loaded shard (ties: lowest index).
fn least_loaded(loads: &[u64]) -> usize {
    let mut best = 0usize;
    for (s, &l) in loads.iter().enumerate().skip(1) {
        if l < loads[best] {
            best = s;
        }
    }
    best
}

/// Pins every resource to the shard whose threads touch it with the
/// greatest total weight (ties: lowest shard; untouched resources keep
/// round-robin `index % shards`, matching [`Ownership`]'s fallback).
fn place_resources(
    touches: &[Vec<(u32, u64)>],
    thread_shard: &[u32],
    shards: usize,
    out: &mut [u32],
) {
    let mut score = vec![0u64; shards];
    for (r, threads) in touches.iter().enumerate() {
        if threads.is_empty() {
            out[r] = id32(r % shards);
            continue;
        }
        score.iter_mut().for_each(|s| *s = 0);
        for &(t, w) in threads {
            score[thread_shard[t as usize] as usize] += w;
        }
        let mut best = 0usize;
        for (s, &v) in score.iter().enumerate().skip(1) {
            if v > score[best] {
                best = s;
            }
        }
        out[r] = id32(best);
    }
}

/// The profile's edges regrouped per endpoint, adjacency-list style,
/// sorted by id for deterministic walks.
struct Adjacency {
    /// Per thread: `(lock, weight)` touches.
    thread_locks: Vec<Vec<(u32, u64)>>,
    /// Per thread: `(var, weight)` touches.
    thread_vars: Vec<Vec<(u32, u64)>>,
    /// Per thread: `(peer thread, weight)` fork/join edges, both
    /// directions merged (moving either endpoint changes the edge).
    thread_threads: Vec<Vec<(u32, u64)>>,
    /// Per lock: `(thread, weight)` touches.
    lock_threads: Vec<Vec<(u32, u64)>>,
    /// Per var: `(thread, weight)` touches.
    var_threads: Vec<Vec<(u32, u64)>>,
}

impl Adjacency {
    fn build(profile: &AffinityProfile) -> Self {
        let n = profile.thread_weight.len();
        let mut locks = 0usize;
        let mut vars = 0usize;
        for &(_, l) in profile.lock_touch.keys() {
            locks = locks.max(l as usize + 1);
        }
        for &(_, x) in profile.var_touch.keys() {
            vars = vars.max(x as usize + 1);
        }
        let mut adj = Self {
            thread_locks: vec![Vec::new(); n],
            thread_vars: vec![Vec::new(); n],
            thread_threads: vec![Vec::new(); n],
            lock_threads: vec![Vec::new(); locks],
            var_threads: vec![Vec::new(); vars],
        };
        for (&(t, l), &w) in &profile.lock_touch {
            adj.thread_locks[t as usize].push((l, w));
            adj.lock_threads[l as usize].push((t, w));
        }
        for (&(t, x), &w) in &profile.var_touch {
            adj.thread_vars[t as usize].push((x, w));
            adj.var_threads[x as usize].push((t, w));
        }
        let mut pairs: HashMap<(u32, u32), u64> = HashMap::new();
        for (&(t, u), &w) in &profile.thread_pair {
            let key = if t <= u { (t, u) } else { (u, t) };
            *pairs.entry(key).or_insert(0) += w;
        }
        for (&(a, b), &w) in &pairs {
            adj.thread_threads[a as usize].push((b, w));
            adj.thread_threads[b as usize].push((a, w));
        }
        for list in adj
            .thread_locks
            .iter_mut()
            .chain(adj.thread_vars.iter_mut())
            .chain(adj.thread_threads.iter_mut())
            .chain(adj.lock_threads.iter_mut())
            .chain(adj.var_threads.iter_mut())
        {
            list.sort_unstable();
        }
        adj
    }

    /// Cross-edge weight thread `t` would contribute if placed on
    /// shard `s`, under the current resource/thread placements.
    fn thread_cross(
        &self,
        t: usize,
        s: usize,
        thread_shard: &[u32],
        lock_shard: &[u32],
        var_shard: &[u32],
    ) -> u64 {
        let s = id32(s);
        let mut cross = 0u64;
        for &(l, w) in &self.thread_locks[t] {
            if lock_shard[l as usize] != s {
                cross += w;
            }
        }
        for &(x, w) in &self.thread_vars[t] {
            if var_shard[x as usize] != s {
                cross += w;
            }
        }
        for &(u, w) in &self.thread_threads[t] {
            if thread_shard[u as usize] != s {
                cross += w;
            }
        }
        cross
    }
}

/// The cross-shard split a partition is predicted (or measured) to
/// produce — see [`AffinityProfile::evaluate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrossPrediction {
    /// Events whose acting thread and touched resource live on
    /// different shards (one clock dialogue each).
    pub cross_events: u64,
    /// Outermost ends (all-shard barriers, partition-independent).
    pub global_ends: u64,
    /// All routed events.
    pub total_events: u64,
}

impl CrossPrediction {
    /// Fraction of events needing any cross-shard coordination; `0.0`
    /// for an empty trace. Comparable to
    /// [`ShardStats::cross_edge_rate`](super::shard::ShardStats::cross_edge_rate).
    #[must_use]
    pub fn cross_rate(&self) -> f64 {
        if self.total_events == 0 {
            return 0.0;
        }
        (self.cross_events + self.global_ends) as f64 / self.total_events as f64
    }
}

/// A concrete shard placement: per-id shard tables plus the profile
/// numbers that justified it. Serializable (versioned JSON) so `rapid
/// partition --out plan.json` round-trips into `--partition
/// plan.json`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Shard count the tables index into.
    pub shards: usize,
    /// `threads[i]` = shard owning thread index `i`.
    pub threads: Vec<u32>,
    /// `locks[i]` = shard owning lock index `i`.
    pub locks: Vec<u32>,
    /// `vars[i]` = shard owning variable index `i`.
    pub vars: Vec<u32>,
    /// Events in the profiled trace.
    pub events: u64,
    /// Outermost ends in the profiled trace.
    pub outermost_ends: u64,
    /// Predicted cross-shard events under this placement.
    pub predicted_cross: u64,
}

impl PartitionPlan {
    /// The [`Ownership`] this plan denotes: round-robin with every
    /// profiled id pinned (ids beyond the tables — e.g. named in a
    /// `.rbt` name table but never touched — keep the round-robin
    /// fallback, exactly as during planning).
    ///
    /// # Panics
    ///
    /// Panics if a table entry names a shard `>= shards` (impossible
    /// for planner output; [`from_json`](Self::from_json) validates).
    #[must_use]
    pub fn ownership(&self) -> Ownership {
        let mut own = Ownership::round_robin(self.shards);
        for (i, &s) in self.threads.iter().enumerate() {
            own.pin_thread(i, s as usize);
        }
        for (i, &s) in self.locks.iter().enumerate() {
            own.pin_lock(i, s as usize);
        }
        for (i, &s) in self.vars.iter().enumerate() {
            own.pin_var(i, s as usize);
        }
        own
    }

    /// The prediction bundled with the plan.
    #[must_use]
    pub fn predicted(&self) -> CrossPrediction {
        CrossPrediction {
            cross_events: self.predicted_cross,
            global_ends: self.outermost_ends,
            total_events: self.events,
        }
    }

    /// Serializes to the versioned [`PLAN_SCHEMA`] JSON form.
    #[must_use]
    pub fn to_json(&self) -> String {
        fn list(v: &[u32]) -> String {
            let items: Vec<String> = v.iter().map(u32::to_string).collect();
            items.join(", ")
        }
        format!(
            "{{\n  \"schema\": \"{}\",\n  \"shards\": {},\n  \"events\": {},\n  \
             \"outermost_ends\": {},\n  \"predicted_cross\": {},\n  \
             \"threads\": [{}],\n  \"locks\": [{}],\n  \"vars\": [{}]\n}}\n",
            PLAN_SCHEMA,
            self.shards,
            self.events,
            self.outermost_ends,
            self.predicted_cross,
            list(&self.threads),
            list(&self.locks),
            list(&self.vars),
        )
    }

    /// Parses the [`to_json`](Self::to_json) form (hand-rolled — the
    /// suite carries no JSON dependency), validating the schema tag
    /// and that every table entry is a shard index in range.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first structural problem.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let mut schema = None;
        let mut shards = None;
        let mut events = None;
        let mut outermost_ends = None;
        let mut predicted_cross = None;
        let mut threads = None;
        let mut locks = None;
        let mut vars = None;
        p.expect(b'{')?;
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "schema" => schema = Some(p.string()?),
                "shards" => shards = Some(p.number()?),
                "events" => events = Some(p.number()?),
                "outermost_ends" => outermost_ends = Some(p.number()?),
                "predicted_cross" => predicted_cross = Some(p.number()?),
                "threads" => threads = Some(p.array()?),
                "locks" => locks = Some(p.array()?),
                "vars" => vars = Some(p.array()?),
                other => return Err(format!("unknown plan field `{other}`")),
            }
            if !p.comma_or(b'}')? {
                break;
            }
        }
        p.end()?;
        let schema = schema.ok_or("missing `schema`")?;
        if schema != PLAN_SCHEMA {
            return Err(format!("unsupported plan schema `{schema}` (want `{PLAN_SCHEMA}`)"));
        }
        let shards = usize::try_from(shards.ok_or("missing `shards`")?)
            .map_err(|_| "shard count exceeds usize".to_string())?;
        if shards == 0 {
            return Err("plan needs at least one shard".into());
        }
        let check = |name: &str, table: Option<Vec<u64>>| -> Result<Vec<u32>, String> {
            let table = table.ok_or_else(|| format!("missing `{name}`"))?;
            table
                .into_iter()
                .map(|s| {
                    if s as usize >= shards {
                        return Err(format!("`{name}` pins shard {s} but the plan has {shards}"));
                    }
                    Ok(s as u32)
                })
                .collect()
        };
        Ok(Self {
            shards,
            threads: check("threads", threads)?,
            locks: check("locks", locks)?,
            vars: check("vars", vars)?,
            events: events.ok_or("missing `events`")?,
            outermost_ends: outermost_ends.ok_or("missing `outermost_ends`")?,
            predicted_cross: predicted_cross.ok_or("missing `predicted_cross`")?,
        })
    }
}

/// Minimal recursive-descent reader for the flat plan object.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        self.ws();
        match self.bytes.get(self.pos) {
            Some(&b) if b == want => {
                self.pos += 1;
                Ok(())
            }
            got => Err(format!(
                "expected `{}` at byte {}, found {:?}",
                want as char,
                self.pos,
                got.map(|&b| b as char)
            )),
        }
    }

    /// After a value: consumes `,` (→ `true`) or `close` (→ `false`).
    fn comma_or(&mut self, close: u8) -> Result<bool, String> {
        self.ws();
        match self.bytes.get(self.pos) {
            Some(b',') => {
                self.pos += 1;
                Ok(true)
            }
            Some(&b) if b == close => {
                self.pos += 1;
                Ok(false)
            }
            got => Err(format!(
                "expected `,` or `{}` at byte {}, found {:?}",
                close as char,
                self.pos,
                got.map(|&b| b as char)
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "plan is not UTF-8".to_string())?;
                if s.contains('\\') {
                    return Err("escape sequences are not part of the plan format".into());
                }
                self.pos += 1;
                return Ok(s.to_string());
            }
            self.pos += 1;
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<u64, String> {
        self.ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are UTF-8")
            .parse()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn array(&mut self) -> Result<Vec<u64>, String> {
        self.expect(b'[')?;
        self.ws();
        let mut items = Vec::new();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(items);
        }
        loop {
            items.push(self.number()?);
            if !self.comma_or(b']')? {
                return Ok(items);
            }
        }
    }

    fn end(&mut self) -> Result<(), String> {
        self.ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("trailing content at byte {}", self.pos))
        }
    }
}

/// Profiles any event source in one streaming pass (no validation —
/// run the validator separately if the input is untrusted; an
/// ill-formed trace yields a well-defined but useless profile, and the
/// sharded run itself still validates by default).
///
/// # Errors
///
/// Propagates source failures; events preceding the failure are
/// already accumulated.
pub fn profile_source<S: EventSource + ?Sized>(
    source: &mut S,
    batch_events: usize,
) -> Result<AffinityProfile, SourceError> {
    let mut profile = AffinityProfile::new();
    let mut ends = EndTracker::new();
    let mut batch = EventBatch::with_target(batch_events);
    loop {
        let refill = source.next_batch(&mut batch);
        for &event in batch.events() {
            profile.observe(event, &mut ends);
        }
        if refill? == 0 {
            break;
        }
    }
    Ok(profile)
}

/// [`profile_source`] with chunk-parallel `.rbt` ingest: up to
/// `ingest_jobs` reader threads decode chunks concurrently and the
/// profiler consumes the restitched stream — the same path as
/// [`check_sharded_chunked`](super::shard::check_sharded_chunked).
/// With `ingest_jobs <= 1` (or a single-chunk trace) this is exactly
/// [`profile_source`] over a whole-file [`MmapSource`].
///
/// # Errors
///
/// As [`profile_source`].
pub fn profile_chunked(
    trace: &Arc<BinTrace>,
    ingest_jobs: usize,
    batch_events: usize,
) -> Result<AffinityProfile, SourceError> {
    let readers = ingest_jobs.min(trace.chunks().len());
    if readers <= 1 {
        return profile_source(&mut MmapSource::new(Arc::clone(trace)), batch_events);
    }
    let mut source = super::chunkpar::ChunkParSource::new(Arc::clone(trace), readers, batch_events);
    profile_source(&mut source, batch_events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::shard::{check_sharded, ShardAlgo, ShardConfig};
    use tracelog::Trace;
    use workloads::GenConfig;

    fn shape(name: &str, threads: usize, events: usize) -> Trace {
        let cfg = GenConfig { seed: 7, threads, events, ..GenConfig::default() };
        workloads::shapes::collect(name, &cfg).expect("known shape")
    }

    fn profile(trace: &Trace) -> AffinityProfile {
        profile_source(&mut trace.stream(), 1024).expect("in-memory stream")
    }

    #[test]
    fn profile_counts_match_the_trace() {
        let trace = shape("convoy", 4, 4_000);
        let p = profile(&trace);
        assert_eq!(p.events, trace.len() as u64);
        let weight: u64 = p.thread_weight.iter().sum();
        assert_eq!(weight, p.events, "every event is attributed to its thread");
        assert!(p.outermost_ends > 0, "convoy transactions end");
        assert!(!p.lock_touch.is_empty(), "convoy touches its lock");
    }

    #[test]
    fn convoy_collapses_and_beats_round_robin() {
        let trace = shape("convoy", 4, 4_000);
        let p = profile(&trace);
        for shards in [2usize, 4] {
            let plan = p.partition(shards);
            let auto = p.evaluate(&plan.ownership());
            assert_eq!(auto.cross_events, plan.predicted_cross);
            let rr = p.evaluate(&Ownership::round_robin(shards));
            // One lock plus shared vars: nothing separates, so the
            // soft balance term lets the convoy collapse — only the
            // unavoidable global ends remain.
            assert_eq!(auto.cross_events, 0, "convoy collapses at {shards} shards");
            assert!(
                rr.cross_events > 2 * (auto.cross_events + 1),
                "round-robin {} vs auto {} at {shards} shards",
                rr.cross_events,
                auto.cross_events
            );
        }
    }

    #[test]
    fn fanout_pins_private_vars_with_their_workers() {
        let trace = shape("fanout", 4, 4_000);
        let p = profile(&trace);
        for shards in [2usize, 4] {
            let plan = p.partition(shards);
            let auto = plan.predicted();
            let rr = p.evaluate(&Ownership::round_robin(shards));
            // Round-robin misaligns worker w+1 from its private var w;
            // the planner re-aligns them, leaving only fork/join edges.
            assert!(
                auto.cross_events * 2 <= rr.cross_events,
                "auto {} vs round-robin {} at {shards} shards",
                auto.cross_events,
                rr.cross_events
            );
            let own = plan.ownership();
            for w in 0..3usize {
                assert_eq!(
                    own.var_shard(w),
                    own.thread_shard(w + 1),
                    "private var {w} rides with its worker"
                );
            }
        }
    }

    #[test]
    fn partitioning_is_deterministic() {
        let trace = shape("nesting", 5, 3_000);
        let p = profile(&trace);
        assert_eq!(p.partition(3), p.partition(3));
    }

    #[test]
    fn plan_json_round_trips() {
        let trace = shape("fanout", 3, 1_500);
        let plan = profile(&trace).partition(2);
        let parsed = PartitionPlan::from_json(&plan.to_json()).expect("own output parses");
        assert_eq!(parsed, plan);
    }

    #[test]
    fn plan_json_rejects_malformed_input() {
        assert!(PartitionPlan::from_json("").is_err());
        assert!(PartitionPlan::from_json("{}").is_err());
        let plan = profile(&shape("convoy", 2, 600)).partition(2);
        let json = plan.to_json();
        let bad_schema = json.replace(PLAN_SCHEMA, "rapid-partition-v0");
        assert!(PartitionPlan::from_json(&bad_schema).unwrap_err().contains("schema"));
        let bad_shard = json.replace("\"shards\": 2", "\"shards\": 1");
        assert!(PartitionPlan::from_json(&bad_shard).is_err(), "out-of-range pins rejected");
    }

    #[test]
    fn prediction_matches_measured_shard_stats() {
        for name in ["convoy", "fanout", "nesting"] {
            let trace = shape(name, 4, 3_000);
            let p = profile(&trace);
            for shards in [2usize, 3] {
                for own in [Ownership::round_robin(shards), p.partition(shards).ownership()] {
                    let predicted = p.evaluate(&own);
                    let got = check_sharded(
                        &mut trace.stream(),
                        ShardAlgo::ReadOpt,
                        own,
                        &ShardConfig::default(),
                    )
                    .expect("shapes are well-formed");
                    assert_eq!(
                        predicted.cross_events, got.stats.cross_events,
                        "{name}@{shards}: predicted cross == measured"
                    );
                    assert_eq!(
                        predicted.global_ends, got.stats.global_ends,
                        "{name}@{shards}: predicted ends == measured"
                    );
                    assert_eq!(predicted.total_events, got.events, "{name}@{shards}: totals");
                }
            }
        }
    }

    #[test]
    fn empty_profile_partitions_trivially() {
        let p = AffinityProfile::new();
        let plan = p.partition(4);
        assert_eq!(plan.predicted_cross, 0);
        assert_eq!(plan.ownership().shards(), 4);
    }
}
