//! The threaded per-trace sharding runtime: one trace, N cooperating
//! shards of the *same* checker.
//!
//! [`super::par`] scales across *checkers* — every worker still
//! swallows the whole trace, so the slowest algorithm is a hard Amdahl
//! wall. This module scales *within* one checker: the protocol layer in
//! [`aerodrome::shard`] partitions the checker's state across shards,
//! and this module supplies the machinery that lets those shards run on
//! real threads:
//!
//! * the **router** (the calling thread) reads the trace once, tags
//!   every event with a [`aerodrome::shard::Route`], and appends
//!   per-shard `Step` streams. Shard-local events — the overwhelming
//!   majority under a good partition — ride in coarse step batches over
//!   bounded channels and are checked with no synchronisation at all;
//! * **cross-shard events** appear in *both* involved shards' streams
//!   (tagged actor/owner), and the shards exchange the clock messages
//!   directly over per-shard unbounded channels, matched by the event's
//!   global sequence number. Two locality optimisations keep these
//!   dialogues cheap without touching verdicts: outgoing messages are
//!   *batched* per channel flush (buffered in a per-shard outbox until the
//!   shard is about to block), and unchanged clocks are *memoized* away
//!   entirely (the [`aerodrome::shard`] send/receive caches);
//! * **outermost ends** appear in every stream and run the two-phase
//!   vote barrier of [`aerodrome::shard`].
//!
//! Verdicts, first-violation attribution and the event/join counters of
//! [`CheckerReport`] are **bit-identical** to the sequential engine at
//! every shard count (the differential suites are the spec). Two pieces
//! of machinery make that exactness cheap:
//!
//! * a shared monotone *candidate* (`RunFlag`) records the smallest
//!   violating sequence number; shards skip (drain) steps past it and
//!   waiting shards abort, so the first violation in **trace order**
//!   wins no matter which wall-clock order detections happen in;
//! * each shard keeps a small ring of `(seq, cumulative joins)`
//!   checkpoints (`JoinsRing`); on a violation at `v`, rolling every
//!   shard's join counter back to its last checkpoint `≤ v` reproduces
//!   the sequential `clock_joins` exactly, even though fast shards ran
//!   (boundedly — the router stalls past [`RUNAHEAD_WINDOW`]) ahead of
//!   the violation before it was announced.
//!
//! The only non-identical report field is the [`PoolStats`] *gauge*
//! block: clock values that cross shards are materialised as copies
//! where the sequential store would share a slot, so allocation-traffic
//! gauges differ (the per-shard zero-allocation steady state still
//! holds, which the session tests assert per shard).
//!
//! Only Algorithms 1 and 2 are shardable — see [`aerodrome::shard`] on
//! why Algorithm 3's lazy-epoch machinery resists partitioning.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use aerodrome::basic::BasicRules;
use aerodrome::readopt::ReadOptRules;
use aerodrome::shard::{EndTracker, Ownership, Route, ShardChecker, ShardMsg, ShardRules};
use aerodrome::{CheckerReport, Outcome, Violation, ViolationKind};
use tracelog::binfmt::{BinTrace, MmapSource};
use tracelog::stream::{EventBatch, EventSource, DEFAULT_BATCH_EVENTS};
use tracelog::{Event, EventId, Op, SourceError, ThreadId, Validator, ValiditySummary};
use vc::{ClockPool, PoolStats};

use super::chunkpar::ChunkParSource;
use super::par::CheckerRun;

/// How far (in events) the router may run ahead of the slowest shard.
///
/// This bounds both the work a fast shard can sink into events past an
/// undiscovered violation and the span the `JoinsRing` must cover for
/// the exact join-counter rollback. Large enough that the stall never
/// engages on balanced workloads; small enough that a ring of this many
/// checkpoints is a few hundred KiB per shard.
pub const RUNAHEAD_WINDOW: u64 = 32 * 1024;

/// The router re-checks the candidate/stall conditions every this many
/// routed events (atomics off the hot path).
const STALL_CHECK_EVENTS: u64 = 1024;

/// Which shardable algorithm to run (see the module docs on why
/// Algorithm 3 is absent).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardAlgo {
    /// Algorithm 1 (`aerodrome-basic`).
    Basic,
    /// Algorithm 2 (`aerodrome-readopt`).
    ReadOpt,
}

impl ShardAlgo {
    /// The checker name this algorithm reports ([`CheckerReport::name`]).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ShardAlgo::Basic => "aerodrome-basic",
            ShardAlgo::ReadOpt => "aerodrome-readopt",
        }
    }
}

/// Tuning knobs of the sharded runtime (shard *count* lives in
/// [`Ownership`]).
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Events per ingest refill and per full step batch (default
    /// [`DEFAULT_BATCH_EVENTS`]).
    pub batch_events: usize,
    /// Bounded step-channel depth, in batches, per shard (default 2).
    pub channel_batches: usize,
    /// Run the online well-formedness validator on the router (default
    /// `true`, matching [`super::par::ParConfig`]).
    pub validate: bool,
    /// Suppress cross-shard resends of unchanged clocks (default
    /// `true`; see [`aerodrome::shard`] on why it is invisible to
    /// verdicts).
    pub memo: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self { batch_events: DEFAULT_BATCH_EVENTS, channel_batches: 2, validate: true, memo: true }
    }
}

impl ShardConfig {
    /// Sets the per-refill batch size.
    ///
    /// # Panics
    ///
    /// Panics if `events == 0`.
    #[must_use]
    pub fn batch_events(mut self, events: usize) -> Self {
        assert!(events > 0, "batch size must be positive");
        self.batch_events = events;
        self
    }

    /// Sets the per-shard step-channel depth in batches (minimum 1).
    #[must_use]
    pub fn channel_batches(mut self, batches: usize) -> Self {
        self.channel_batches = batches.max(1);
        self
    }

    /// Enables or disables the router-side validator.
    #[must_use]
    pub fn validate(mut self, on: bool) -> Self {
        self.validate = on;
        self
    }

    /// Enables or disables unchanged-clock suppression.
    #[must_use]
    pub fn memo(mut self, on: bool) -> Self {
        self.memo = on;
        self
    }
}

/// Routing/runtime counters of a sharded run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shards the trace was split across.
    pub shards: usize,
    /// Events whose participants all lived on one shard (checked with
    /// no synchronisation).
    pub local_events: u64,
    /// Events that crossed two shards (one message dialogue each).
    pub cross_events: u64,
    /// Outermost end events (all-shard barriers).
    pub global_ends: u64,
    /// Step batches the router flushed (including stall markers).
    pub step_batches: u64,
    /// Cross-shard dialogue messages produced by the shards (payload
    /// items, whatever the channel batching).
    pub cross_msgs: u64,
    /// Channel sends that shipped those messages — each flush coalesces
    /// a whole outbox buffer, so `cross_msgs / msg_flushes` is the mean
    /// dialogue-batching factor.
    pub msg_flushes: u64,
    /// Clock payloads suppressed as unchanged by the send memo (these
    /// still count in `cross_msgs`; the suppressed bytes are the win).
    pub memo_hits: u64,
    /// Reader threads that decoded chunks in parallel
    /// ([`check_sharded_chunked`]); `0` when the router ingested alone.
    pub ingest_readers: usize,
}

impl ShardStats {
    /// Fraction of routed events that needed any cross-shard
    /// coordination (cross dialogues and global end barriers); `0.0`
    /// for an empty trace. This is the number the partitioner
    /// minimizes.
    #[must_use]
    pub fn cross_edge_rate(&self) -> f64 {
        let total = self.local_events + self.cross_events + self.global_ends;
        if total == 0 {
            return 0.0;
        }
        (self.cross_events + self.global_ends) as f64 / total as f64
    }
}

/// The outcome of a sharded run.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// The merged result — verdict, first violation and
    /// [`CheckerReport`] counters bit-identical to the sequential
    /// engine (the `clocks` gauge block excepted; see module docs).
    pub run: CheckerRun,
    /// Events ingested by the router (≥ `run.report.events`, which
    /// stops at the violation).
    pub events: u64,
    /// Validator residue; `None` when validation was disabled.
    pub summary: Option<ValiditySummary>,
    /// Routing counters.
    pub stats: ShardStats,
}

/// What a shard must do with one event, as classified by the router.
#[derive(Clone, Copy, Debug)]
enum StepRole {
    /// Run the sequential dispatch locally.
    Local,
    /// Actor side of a cross-shard dialogue with shard `peer`.
    Actor { peer: u32 },
    /// Owner side of a cross-shard dialogue with shard `peer`.
    Owner { peer: u32 },
    /// Ending side of an outermost-end barrier.
    EndActor,
    /// Passive side of an outermost-end barrier run by shard `actor`.
    EndPassive { actor: u32 },
}

/// One entry of a shard's step stream.
#[derive(Clone, Copy, Debug)]
struct Step {
    seq: u64,
    event: Event,
    role: StepRole,
}

/// A flushed span of one shard's step stream. `frontier` is the
/// router's global position at flush time: after draining the steps the
/// shard publishes it, so idle shards still advance the stall window.
struct StepBatch {
    frontier: u64,
    steps: Vec<Step>,
}

/// Shared run state: the candidate violation and the panic latch.
struct RunFlag {
    /// Smallest sequence number any shard has declared a violation at;
    /// `u64::MAX` while none. Monotonically non-increasing (CAS-min).
    candidate: AtomicU64,
    /// The declared violations, keyed by sequence number. The entry
    /// matching the final candidate is the verdict.
    slot: Mutex<Vec<(u64, Violation)>>,
    /// Raised by a shard's drop guard when it unwinds, so waiting peers
    /// and the router stop instead of hanging; the scope join re-raises
    /// the original panic.
    panicked: AtomicBool,
}

impl RunFlag {
    fn new() -> Self {
        Self {
            candidate: AtomicU64::new(u64::MAX),
            slot: Mutex::new(Vec::new()),
            panicked: AtomicBool::new(false),
        }
    }

    /// Declares a violation at `seq`, lowering the candidate.
    fn report(&self, seq: u64, v: Violation) {
        self.slot.lock().expect("violation slot").push((seq, v));
        self.candidate.fetch_min(seq, Ordering::AcqRel);
    }

    fn candidate(&self) -> u64 {
        self.candidate.load(Ordering::Acquire)
    }
}

/// Sets the shared panic latch if the owning thread unwinds.
struct PanicGuard<'a>(&'a AtomicBool);

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if thread::panicking() {
            self.0.store(true, Ordering::SeqCst);
        }
    }
}

/// A bounded ring of `(seq, cumulative clock_joins)` checkpoints, one
/// per processed step, used to roll a shard's join counter back to a
/// violation cut-point it may have run (boundedly) past.
#[derive(Debug)]
struct JoinsRing {
    entries: VecDeque<(u64, u64)>,
    cap: usize,
    /// The most recently evicted checkpoint — the predecessor fallback
    /// when every retained entry is past the cut.
    evicted: Option<(u64, u64)>,
}

impl JoinsRing {
    fn new(cap: usize) -> Self {
        Self { entries: VecDeque::with_capacity(cap.min(4096)), cap, evicted: None }
    }

    fn push(&mut self, seq: u64, joins: u64) {
        self.entries.push_back((seq, joins));
        if self.entries.len() > self.cap {
            self.evicted = self.entries.pop_front();
        }
    }

    /// The shard's cumulative joins after its last step with
    /// `seq <= cut`. The runahead window guarantees the predecessor was
    /// not evicted (debug-asserted).
    fn joins_at(&self, cut: u64) -> u64 {
        let mut best = match self.evicted {
            Some((seq, joins)) if seq <= cut => joins,
            Some(_) => {
                debug_assert!(false, "joins ring evicted past the violation cut");
                0
            }
            None => 0,
        };
        for &(seq, joins) in &self.entries {
            if seq <= cut {
                best = joins;
            } else {
                break;
            }
        }
        best
    }
}

/// A batch of cross-shard dialogue messages shipped in one channel
/// send, each tagged with its event's global sequence number.
type MsgBatch = Vec<(u64, ShardMsg)>;

/// Per-worker buffers of outgoing cross-shard messages, one per peer.
///
/// Messages accumulate while the shard still has runnable steps and are
/// shipped in one channel send per peer the moment the shard is about
/// to block — on a peer message, on the step channel, or at drain
/// start. That *flush-before-block* discipline is the liveness
/// invariant (a waiting shard's partner never sits on the message it
/// needs), and it is what coalesces dialogues: a busy shard drains
/// several queued step batches per flush.
struct Outbox {
    bufs: Vec<MsgBatch>,
    /// Dialogue messages pushed (payload items).
    msgs_sent: u64,
    /// Channel sends performed (each ships one whole buffer).
    flushes: u64,
}

impl Outbox {
    fn new(peers: usize) -> Self {
        Self { bufs: (0..peers).map(|_| Vec::new()).collect(), msgs_sent: 0, flushes: 0 }
    }

    fn push(&mut self, peer: usize, seq: u64, msg: ShardMsg) {
        self.msgs_sent += 1;
        self.bufs[peer].push((seq, msg));
    }

    /// Ships every non-empty buffer to its peer.
    fn flush_all(&mut self, txs: &[Sender<MsgBatch>]) {
        for (peer, buf) in self.bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                self.flushes += 1;
                let _ = txs[peer].send(std::mem::take(buf));
            }
        }
    }
}

/// Blocks until the peer message for `seq` arrives, stashing messages
/// for other sequence numbers. Flushes the outbox first — see
/// [`Outbox`] on why blocking with buffered messages would deadlock.
///
/// Returns `None` — the caller must switch to drain mode — when an
/// earlier violation makes the message moot (`candidate < seq`;
/// `candidate <= seq` with `inclusive`, for the end barrier's resolve
/// wait where the candidate may be this very event), when a peer
/// panicked, or when every sender is gone.
#[allow(clippy::too_many_arguments)]
fn wait_msg(
    rx: &Receiver<MsgBatch>,
    stash: &mut Vec<(u64, ShardMsg)>,
    seq: u64,
    inclusive: bool,
    flag: &RunFlag,
    outbox: &mut Outbox,
    peer_txs: &[Sender<MsgBatch>],
) -> Option<ShardMsg> {
    // First-match scan keeps per-sender FIFO order (EndBegin before
    // EndResolve from the same actor).
    if let Some(i) = stash.iter().position(|(s, _)| *s == seq) {
        return Some(stash.remove(i).1);
    }
    outbox.flush_all(peer_txs);
    loop {
        let candidate = flag.candidate();
        if candidate < seq || (inclusive && candidate == seq) {
            return None;
        }
        if flag.panicked.load(Ordering::SeqCst) {
            return None;
        }
        match rx.recv_timeout(Duration::from_micros(200)) {
            Ok(batch) => {
                stash.extend(batch);
                if let Some(i) = stash.iter().position(|(s, _)| *s == seq) {
                    return Some(stash.remove(i).1);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return None,
        }
    }
}

/// What a shard worker hands back when its step stream closes.
struct WorkerOut {
    ring: JoinsRing,
    /// Dialogue messages this shard produced.
    msgs_sent: u64,
    /// Channel sends that shipped them (outbox flushes).
    msg_flushes: u64,
}

/// One shard's worker loop: drain step batches in sequence order,
/// running locals straight through the sequential dispatch and holding
/// the message dialogues for cross/global steps. Outgoing messages ride
/// the [`Outbox`]: buffered while steps keep coming, flushed whenever
/// the worker is about to block.
#[allow(clippy::too_many_arguments)]
fn shard_worker<R: ShardRules>(
    me: usize,
    shard_count: usize,
    checker: &mut ShardChecker<R>,
    step_rx: &Receiver<StepBatch>,
    peer_rx: &Receiver<MsgBatch>,
    peer_txs: &[Sender<MsgBatch>],
    position: &AtomicU64,
    flag: &RunFlag,
    recycle_tx: &Sender<Vec<Step>>,
    ring_cap: usize,
) -> WorkerOut {
    let _guard = PanicGuard(&flag.panicked);
    let mut stash: Vec<(u64, ShardMsg)> = Vec::new();
    let mut ring = JoinsRing::new(ring_cap);
    let mut outbox = Outbox::new(shard_count);
    let mut draining = false;
    loop {
        // Drain ready step batches without blocking; only when the
        // queue runs dry flush the outbox and wait — the coalescing
        // half of the flush-before-block discipline.
        let StepBatch { frontier, mut steps } = match step_rx.try_recv() {
            Ok(b) => b,
            Err(mpsc::TryRecvError::Empty) => {
                outbox.flush_all(peer_txs);
                match step_rx.recv() {
                    Ok(b) => b,
                    Err(_) => break,
                }
            }
            Err(mpsc::TryRecvError::Disconnected) => break,
        };
        for step in steps.drain(..) {
            let Step { seq, event, role } = step;
            if !draining && flag.candidate() < seq {
                // An earlier event violated: everything from here on is
                // past the sequential engine's stopping point.
                draining = true;
                outbox.flush_all(peer_txs);
            }
            if draining {
                position.store(seq + 1, Ordering::Release);
                continue;
            }
            let t = event.thread;
            match role {
                StepRole::Local => {
                    if let Err(v) = checker.process_local(EventId(seq), event) {
                        flag.report(seq, v);
                        draining = true;
                    }
                }
                StepRole::Actor { peer } => {
                    let p = peer as usize;
                    let result = match event.op {
                        Op::Acquire(l) => {
                            wait_msg(peer_rx, &mut stash, seq, false, flag, &mut outbox, peer_txs)
                                .map(|m| checker.acquire_actor(EventId(seq), t, l, m, p))
                        }
                        Op::Join(u) => {
                            wait_msg(peer_rx, &mut stash, seq, false, flag, &mut outbox, peer_txs)
                                .map(|m| checker.join_actor(EventId(seq), t, u, m, p))
                        }
                        Op::Release(_) => {
                            let m = checker.release_actor(t, p);
                            outbox.push(p, seq, m);
                            Some(Ok(()))
                        }
                        Op::Fork(_) => {
                            let m = checker.fork_actor(t, p);
                            outbox.push(p, seq, m);
                            Some(Ok(()))
                        }
                        Op::Read(x) => {
                            wait_msg(peer_rx, &mut stash, seq, false, flag, &mut outbox, peer_txs)
                                .map(|m| {
                                    let (r, reply) = checker.read_actor(EventId(seq), t, x, m, p);
                                    // Reply before surfacing the verdict,
                                    // so the owner at this very seq never
                                    // hangs (the drain-start flush ships
                                    // it).
                                    outbox.push(p, seq, reply);
                                    r
                                })
                        }
                        Op::Write(x) => {
                            wait_msg(peer_rx, &mut stash, seq, false, flag, &mut outbox, peer_txs)
                                .map(|m| {
                                    let (r, reply) = checker.write_actor(EventId(seq), t, x, m, p);
                                    outbox.push(p, seq, reply);
                                    r
                                })
                        }
                        Op::Begin | Op::End => unreachable!("begin/end never cross shards"),
                    };
                    match result {
                        Some(Ok(())) => {}
                        Some(Err(v)) => {
                            flag.report(seq, v);
                            draining = true;
                            outbox.flush_all(peer_txs);
                        }
                        None => draining = true,
                    }
                }
                StepRole::Owner { peer } => {
                    let p = peer as usize;
                    match event.op {
                        Op::Acquire(l) => {
                            let m = checker.acquire_owner(t, l, p);
                            outbox.push(p, seq, m);
                        }
                        Op::Join(u) => {
                            let m = checker.join_owner(u, p);
                            outbox.push(p, seq, m);
                        }
                        Op::Release(l) => {
                            match wait_msg(
                                peer_rx,
                                &mut stash,
                                seq,
                                false,
                                flag,
                                &mut outbox,
                                peer_txs,
                            ) {
                                Some(m) => checker.release_owner(t, l, m, p),
                                None => draining = true,
                            }
                        }
                        Op::Fork(u) => {
                            match wait_msg(
                                peer_rx,
                                &mut stash,
                                seq,
                                false,
                                flag,
                                &mut outbox,
                                peer_txs,
                            ) {
                                Some(m) => checker.fork_owner(t, u, m, p),
                                None => draining = true,
                            }
                        }
                        Op::Read(x) => {
                            let m = checker.read_owner(t, x, p);
                            outbox.push(p, seq, m);
                            match wait_msg(
                                peer_rx,
                                &mut stash,
                                seq,
                                false,
                                flag,
                                &mut outbox,
                                peer_txs,
                            ) {
                                Some(reply) => checker.read_owner_absorb(t, x, reply, p),
                                None => draining = true,
                            }
                        }
                        Op::Write(x) => {
                            let m = checker.write_owner(t, x);
                            outbox.push(p, seq, m);
                            match wait_msg(
                                peer_rx,
                                &mut stash,
                                seq,
                                false,
                                flag,
                                &mut outbox,
                                peer_txs,
                            ) {
                                Some(reply) => checker.write_owner_absorb(t, x, reply, p),
                                None => draining = true,
                            }
                        }
                        Op::Begin | Op::End => unreachable!("begin/end never cross shards"),
                    }
                }
                StepRole::EndActor => {
                    let cb_epoch = checker.end_actor_begin(t);
                    for p in 0..shard_count {
                        if p != me {
                            let m = checker.end_broadcast_msg(cb_epoch);
                            outbox.push(p, seq, m);
                        }
                    }
                    let mut vote = checker.end_vote(t);
                    let mut aborted = false;
                    for _ in 1..shard_count {
                        match wait_msg(peer_rx, &mut stash, seq, false, flag, &mut outbox, peer_txs)
                        {
                            Some(ShardMsg::EndVote { violating }) => {
                                vote = match (vote, violating) {
                                    (Some(a), Some(b)) => Some(a.min(b)),
                                    (a, None) => a,
                                    (None, b) => b,
                                };
                            }
                            Some(other) => {
                                debug_assert!(false, "end barrier expects votes");
                                checker.recycle_msg(other);
                            }
                            None => {
                                aborted = true;
                                break;
                            }
                        }
                    }
                    if aborted {
                        draining = true;
                    } else if let Some(u) = vote {
                        // Votes are disjoint across shards, so the
                        // minimum is the sequential sweep's first hit.
                        flag.report(
                            seq,
                            Violation {
                                event: EventId(seq),
                                thread: ThreadId::from_index(u as usize),
                                kind: ViolationKind::AtEnd { ending: t },
                            },
                        );
                        draining = true;
                        outbox.flush_all(peer_txs);
                    } else {
                        for p in 0..shard_count {
                            if p != me {
                                outbox.push(p, seq, ShardMsg::EndResolve);
                            }
                        }
                        checker.end_apply(t, cb_epoch);
                    }
                }
                StepRole::EndPassive { actor } => {
                    match wait_msg(peer_rx, &mut stash, seq, false, flag, &mut outbox, peer_txs) {
                        Some(msg @ ShardMsg::EndBegin { .. }) => {
                            let cb_epoch = checker.end_passive_stage(msg);
                            let violating = checker.end_vote(t);
                            outbox.push(actor as usize, seq, ShardMsg::EndVote { violating });
                            // The resolve never comes if the barrier
                            // itself violated — hence the inclusive
                            // candidate bound.
                            match wait_msg(
                                peer_rx,
                                &mut stash,
                                seq,
                                true,
                                flag,
                                &mut outbox,
                                peer_txs,
                            ) {
                                Some(ShardMsg::EndResolve) => checker.end_apply(t, cb_epoch),
                                Some(other) => {
                                    debug_assert!(false, "end barrier expects resolve");
                                    checker.recycle_msg(other);
                                    draining = true;
                                }
                                None => draining = true,
                            }
                        }
                        Some(other) => {
                            debug_assert!(false, "end barrier expects stage");
                            checker.recycle_msg(other);
                            draining = true;
                        }
                        None => draining = true,
                    }
                }
            }
            // Checkpoint after every processed step — including one
            // that just latched a violation, whose joins the sequential
            // engine also counts.
            ring.push(seq, checker.clock_joins());
            position.store(seq + 1, Ordering::Release);
        }
        position.store(frontier, Ordering::Release);
        let _ = recycle_tx.send(steps);
    }
    // The step stream closed with messages possibly still buffered
    // (e.g. a reply pushed just before the router stopped): peers
    // draining their own tails may still need them.
    outbox.flush_all(peer_txs);
    WorkerOut { ring, msgs_sent: outbox.msgs_sent, msg_flushes: outbox.flushes }
}

/// The router: classifies events, builds per-shard step streams with a
/// flush-involved discipline (cross/global steps are flushed the moment
/// they are appended — the deadlock-freedom invariant: a waiting shard's
/// partner always already has its half of the dialogue), and enforces
/// the runahead window.
struct Router<'a> {
    own: &'a Ownership,
    ends: EndTracker,
    bufs: Vec<Vec<Step>>,
    step_txs: Vec<SyncSender<StepBatch>>,
    recycle_rx: Receiver<Vec<Step>>,
    /// Frontier of the last (possibly empty) batch flushed per shard —
    /// suppresses duplicate stall markers.
    marker_frontier: Vec<u64>,
    next_seq: u64,
    since_check: u64,
    batch_events: usize,
    positions: &'a [AtomicU64],
    flag: &'a RunFlag,
    stats: ShardStats,
}

impl Router<'_> {
    /// Routes one event. Returns `false` when ingest must stop: a
    /// violation candidate precedes the frontier, a shard is gone, or a
    /// peer panicked.
    fn route_event(&mut self, event: Event) -> bool {
        let seq = self.next_seq;
        self.next_seq += 1;
        let outermost = self.ends.observe(event);
        let ok = match self.own.route(event, outermost) {
            Route::Local(s) => {
                self.stats.local_events += 1;
                self.bufs[s].push(Step { seq, event, role: StepRole::Local });
                self.bufs[s].len() < self.batch_events || self.flush(s)
            }
            Route::Cross { actor, owner } => {
                self.stats.cross_events += 1;
                self.bufs[actor].push(Step {
                    seq,
                    event,
                    role: StepRole::Actor { peer: owner as u32 },
                });
                self.bufs[owner].push(Step {
                    seq,
                    event,
                    role: StepRole::Owner { peer: actor as u32 },
                });
                self.flush(owner) && self.flush(actor)
            }
            Route::Global { actor } => {
                self.stats.global_ends += 1;
                for s in 0..self.bufs.len() {
                    let role = if s == actor {
                        StepRole::EndActor
                    } else {
                        StepRole::EndPassive { actor: actor as u32 }
                    };
                    self.bufs[s].push(Step { seq, event, role });
                }
                self.flush_all()
            }
        };
        if !ok {
            return false;
        }
        self.since_check += 1;
        if self.since_check >= STALL_CHECK_EVENTS {
            self.since_check = 0;
            return self.checkpoint();
        }
        true
    }

    /// Ships shard `s`'s buffered steps (or a bare frontier marker).
    /// Returns `false` if the shard's receiver is gone (it panicked).
    fn flush(&mut self, s: usize) -> bool {
        if self.bufs[s].is_empty() && self.marker_frontier[s] == self.next_seq {
            return true; // nothing new since the last flush
        }
        let fresh = self.recycle_rx.try_recv().unwrap_or_default();
        let steps = std::mem::replace(&mut self.bufs[s], fresh);
        self.marker_frontier[s] = self.next_seq;
        self.stats.step_batches += 1;
        self.step_txs[s].send(StepBatch { frontier: self.next_seq, steps }).is_ok()
    }

    /// Flushes every shard's buffer (outermost ends; end of ingest).
    fn flush_all(&mut self) -> bool {
        let mut ok = true;
        for s in 0..self.bufs.len() {
            ok &= self.flush(s);
        }
        ok
    }

    /// The periodic candidate / panic / runahead check. Lagging shards
    /// get their pending steps plus a frontier marker so an *idle*
    /// laggard can publish progress and release the stall.
    fn checkpoint(&mut self) -> bool {
        loop {
            if self.flag.panicked.load(Ordering::SeqCst) {
                return false;
            }
            if self.flag.candidate() < self.next_seq {
                return false; // everything past the violation is moot
            }
            let min_pos = self
                .positions
                .iter()
                .map(|p| p.load(Ordering::Acquire))
                .min()
                .unwrap_or(self.next_seq);
            if self.next_seq.saturating_sub(min_pos) <= RUNAHEAD_WINDOW {
                return true;
            }
            for s in 0..self.bufs.len() {
                if self.positions[s].load(Ordering::Acquire).saturating_add(RUNAHEAD_WINDOW)
                    < self.next_seq
                    && !self.flush(s)
                {
                    return false;
                }
            }
            thread::sleep(Duration::from_micros(100));
        }
    }
}

/// Runs `source` through `shards` under the partition `own`, merging
/// the per-shard results into one sequential-equivalent report.
///
/// With a single shard no threads are spawned and every event runs the
/// sequential dispatch inline — bit-identical to [`aerodrome::Engine`]
/// including the pool gauges.
fn run_sharded<R: ShardRules, S: EventSource + ?Sized>(
    shards: &mut [ShardChecker<R>],
    own: &Ownership,
    config: &ShardConfig,
    source: &mut S,
) -> Result<ShardReport, SourceError> {
    assert_eq!(shards.len(), own.shards(), "one checker shard per ownership shard");
    if shards.len() == 1 {
        return run_single(&mut shards[0], config, source);
    }
    let n = shards.len();
    let depth = config.channel_batches.max(1);
    let batch_events = config.batch_events.max(1);
    // Ring coverage: the window, plus the frontier slack between two
    // checkpoint polls, plus margin for candidate-visibility races.
    let ring_cap = RUNAHEAD_WINDOW as usize + batch_events + STALL_CHECK_EVENTS as usize + 1024;

    let flag = RunFlag::new();
    let positions: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let mut validator = config.validate.then(Validator::new);
    let mut events = 0u64;
    let mut error: Option<SourceError> = None;
    let mut stats = ShardStats { shards: n, ..ShardStats::default() };
    let mut rings: Vec<JoinsRing> = Vec::with_capacity(n);

    thread::scope(|s| {
        let (recycle_tx, recycle_rx) = mpsc::channel::<Vec<Step>>();
        let mut peer_txs = Vec::with_capacity(n);
        let mut peer_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = mpsc::channel::<MsgBatch>();
            peer_txs.push(tx);
            peer_rxs.push(rx);
        }
        let mut step_txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for (i, (checker, peer_rx)) in shards.iter_mut().zip(peer_rxs).enumerate() {
            let (tx, rx) = mpsc::sync_channel::<StepBatch>(depth);
            step_txs.push(tx);
            let txs = peer_txs.clone();
            let recycle = recycle_tx.clone();
            let (flag, position) = (&flag, &positions[i]);
            handles.push(s.spawn(move || {
                shard_worker(i, n, checker, &rx, &peer_rx, &txs, position, flag, &recycle, ring_cap)
            }));
        }
        drop(peer_txs);
        drop(recycle_tx);

        let mut router = Router {
            own,
            ends: EndTracker::new(),
            bufs: (0..n).map(|_| Vec::with_capacity(batch_events)).collect(),
            step_txs,
            recycle_rx,
            marker_frontier: vec![0; n],
            next_seq: 0,
            since_check: 0,
            batch_events,
            positions: &positions,
            flag: &flag,
            stats,
        };
        let mut batch = EventBatch::with_target(batch_events);
        'ingest: loop {
            let refill = source.next_batch(&mut batch);
            if let Some(v) = validator.as_mut() {
                if let Some(e) = super::validate_batch(v, &mut batch) {
                    error = Some(e.into());
                }
            }
            let exhausted = match refill {
                // A validation failure inside the batch precedes a
                // source failure past its end; keep the earlier error.
                Err(e) if error.is_none() => {
                    error = Some(e);
                    true
                }
                Err(_) => true,
                Ok(len) => len == 0 || error.is_some(),
            };
            events += batch.len() as u64;
            for &event in batch.events() {
                if !router.route_event(event) {
                    break 'ingest;
                }
            }
            if exhausted {
                break;
            }
        }
        // Deliver the tail — steps at or before a violation candidate
        // must still be processed for the exact join rollback.
        let _ = router.flush_all();
        stats = router.stats;
        drop(router); // closes the step channels: end-of-stream
        for handle in handles {
            match handle.join() {
                Ok(out) => {
                    stats.cross_msgs += out.msgs_sent;
                    stats.msg_flushes += out.msg_flushes;
                    rings.push(out.ring);
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    stats.memo_hits = shards.iter().map(|c| c.memo_hits()).sum();

    let candidate = flag.candidate();
    let violation = if candidate == u64::MAX {
        None
    } else {
        let slot = flag.slot.lock().expect("violation slot");
        let (seq, v) = slot
            .iter()
            .min_by_key(|(seq, _)| *seq)
            .expect("a candidate implies a recorded violation");
        debug_assert_eq!(*seq, candidate);
        Some(v.clone())
    };
    // A violation always precedes any latched error in trace order (no
    // event at or past an ill-formed position is ever routed), so it
    // wins; with no violation the error surfaces as in `check_all`.
    if violation.is_none() {
        if let Some(e) = error {
            return Err(e);
        }
    }
    let (checker_events, clock_joins) = match &violation {
        Some(_) => (candidate + 1, rings.iter().map(|r| r.joins_at(candidate)).sum()),
        None => (events, shards.iter().map(|c| c.clock_joins()).sum()),
    };
    let mut clocks = PoolStats::default();
    for shard in shards.iter() {
        clocks.accumulate(&shard.clocks_delta());
    }
    let name = shards[0].name();
    let report = CheckerReport { name, events: checker_events, clock_joins, clocks };
    let outcome = violation.map_or(Outcome::Serializable, Outcome::Violation);
    Ok(ShardReport {
        run: CheckerRun { name, outcome, report },
        events,
        summary: validator.map(Validator::finish),
        stats,
    })
}

/// The one-shard fast path: no threads, no messages — the sequential
/// dispatch inline, so even the pool gauges match the plain engine.
fn run_single<R: ShardRules, S: EventSource + ?Sized>(
    checker: &mut ShardChecker<R>,
    config: &ShardConfig,
    source: &mut S,
) -> Result<ShardReport, SourceError> {
    let mut validator = config.validate.then(Validator::new);
    let mut events = 0u64;
    let mut processed = 0u64;
    let mut error: Option<SourceError> = None;
    let mut violation: Option<Violation> = None;
    let mut batch = EventBatch::with_target(config.batch_events.max(1));
    'ingest: loop {
        let refill = source.next_batch(&mut batch);
        if let Some(v) = validator.as_mut() {
            if let Some(e) = super::validate_batch(v, &mut batch) {
                error = Some(e.into());
            }
        }
        let exhausted = match refill {
            Err(e) if error.is_none() => {
                error = Some(e);
                true
            }
            Err(_) => true,
            Ok(len) => len == 0 || error.is_some(),
        };
        events += batch.len() as u64;
        for &event in batch.events() {
            let eid = EventId(processed);
            processed += 1;
            if let Err(v) = checker.process_local(eid, event) {
                violation = Some(v);
                break 'ingest;
            }
        }
        if exhausted {
            break;
        }
    }
    if violation.is_none() {
        if let Some(e) = error {
            return Err(e);
        }
    }
    let name = checker.name();
    let report = CheckerReport {
        name,
        events: processed,
        clock_joins: checker.clock_joins(),
        clocks: checker.clocks_delta(),
    };
    let outcome = violation.map_or(Outcome::Serializable, Outcome::Violation);
    Ok(ShardReport {
        run: CheckerRun { name, outcome, report },
        events,
        summary: validator.map(Validator::finish),
        stats: ShardStats { shards: 1, local_events: processed, ..ShardStats::default() },
    })
}

/// A typed warm session: `N` shards of one algorithm, reusable across
/// traces with per-shard zero-allocation steady state.
#[derive(Debug)]
pub struct TypedShardSession<R: ShardRules> {
    shards: Vec<ShardChecker<R>>,
    own: Ownership,
    config: ShardConfig,
}

impl<R: ShardRules> TypedShardSession<R> {
    /// A fresh session with one cold shard per ownership shard.
    #[must_use]
    pub fn new(own: Ownership, config: ShardConfig) -> Self {
        let shards = (0..own.shards())
            .map(|_| {
                let mut shard = ShardChecker::new();
                shard.set_memo(config.memo);
                shard
            })
            .collect();
        Self { shards, own, config }
    }

    /// Checks one trace. Each shard is session-reset first
    /// ([`ShardChecker::reset`]), so a warm session's per-trace verdict
    /// and counters are bit-identical to a fresh one's — while the
    /// retained clock buffers make the steady-state run allocation-free
    /// per shard (assert via [`TypedShardSession::shard_clock_deltas`]).
    ///
    /// # Errors
    ///
    /// The first source or validation error in trace order, unless a
    /// violation precedes it.
    pub fn check<S: EventSource + ?Sized>(
        &mut self,
        source: &mut S,
    ) -> Result<ShardReport, SourceError> {
        for shard in &mut self.shards {
            shard.reset();
        }
        run_sharded(&mut self.shards, &self.own, &self.config, source)
    }

    /// Shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard pool counters since the last reset — the steady-state
    /// probe: from the second trace on, `heap_allocs()` must be 0 for
    /// every shard.
    #[must_use]
    pub fn shard_clock_deltas(&self) -> Vec<PoolStats> {
        self.shards.iter().map(ShardChecker::clocks_delta).collect()
    }
}

/// An algorithm-erased [`TypedShardSession`], for callers that pick the
/// algorithm at runtime (the CLI).
#[derive(Debug)]
pub enum ShardSession {
    /// Algorithm 1 shards.
    Basic(TypedShardSession<BasicRules<ClockPool>>),
    /// Algorithm 2 shards.
    ReadOpt(TypedShardSession<ReadOptRules<ClockPool>>),
}

impl ShardSession {
    /// A fresh session for `algo` under the partition `own`.
    #[must_use]
    pub fn new(algo: ShardAlgo, own: Ownership, config: ShardConfig) -> Self {
        match algo {
            ShardAlgo::Basic => ShardSession::Basic(TypedShardSession::new(own, config)),
            ShardAlgo::ReadOpt => ShardSession::ReadOpt(TypedShardSession::new(own, config)),
        }
    }

    /// Checks one trace (see [`TypedShardSession::check`]).
    ///
    /// # Errors
    ///
    /// The first source or validation error in trace order, unless a
    /// violation precedes it.
    pub fn check<S: EventSource + ?Sized>(
        &mut self,
        source: &mut S,
    ) -> Result<ShardReport, SourceError> {
        match self {
            ShardSession::Basic(s) => s.check(source),
            ShardSession::ReadOpt(s) => s.check(source),
        }
    }

    /// Shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        match self {
            ShardSession::Basic(s) => s.shards(),
            ShardSession::ReadOpt(s) => s.shards(),
        }
    }

    /// Per-shard pool counters since the last reset.
    #[must_use]
    pub fn shard_clock_deltas(&self) -> Vec<PoolStats> {
        match self {
            ShardSession::Basic(s) => s.shard_clock_deltas(),
            ShardSession::ReadOpt(s) => s.shard_clock_deltas(),
        }
    }
}

/// One-shot sharded check of `source`.
///
/// # Errors
///
/// The first source or validation error in trace order, unless a
/// violation precedes it.
pub fn check_sharded<S: EventSource + ?Sized>(
    source: &mut S,
    algo: ShardAlgo,
    own: Ownership,
    config: &ShardConfig,
) -> Result<ShardReport, SourceError> {
    ShardSession::new(algo, own, config.clone()).check(source)
}

/// [`check_sharded`] with chunk-parallel ingest of one `.rbt` trace:
/// up to `ingest_jobs` reader threads decode chunks concurrently
/// ([`ChunkParSource`]) and the router consumes the restitched stream —
/// parallel decode composed with parallel checking.
///
/// With `ingest_jobs <= 1` (or a single-chunk trace) this is exactly
/// [`check_sharded`] over a whole-file [`MmapSource`].
///
/// # Errors
///
/// As [`check_sharded`].
pub fn check_sharded_chunked(
    trace: &Arc<BinTrace>,
    algo: ShardAlgo,
    own: Ownership,
    config: &ShardConfig,
    ingest_jobs: usize,
) -> Result<ShardReport, SourceError> {
    let readers = ingest_jobs.min(trace.chunks().len());
    if readers <= 1 {
        return check_sharded(&mut MmapSource::new(Arc::clone(trace)), algo, own, config);
    }
    let mut source = ChunkParSource::new(Arc::clone(trace), readers, config.batch_events);
    let readers = source.readers();
    let mut report = check_sharded(&mut source, algo, own, config)?;
    report.stats.ingest_readers = readers;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerodrome::basic::BasicChecker;
    use aerodrome::readopt::ReadOptChecker;
    use aerodrome::{run_checker, Checker};
    use tracelog::paper_traces::{rho1, rho2, rho3, rho4};
    use tracelog::Trace;
    use workloads::GenConfig;

    const ALGOS: [ShardAlgo; 2] = [ShardAlgo::Basic, ShardAlgo::ReadOpt];

    fn engine_baseline(algo: ShardAlgo, trace: &Trace) -> (Outcome, CheckerReport) {
        match algo {
            ShardAlgo::Basic => {
                let mut c = BasicChecker::new();
                (run_checker(&mut c, trace), c.report())
            }
            ShardAlgo::ReadOpt => {
                let mut c = ReadOptChecker::new();
                (run_checker(&mut c, trace), c.report())
            }
        }
    }

    fn assert_threaded_matches(trace: &Trace, config: &ShardConfig) {
        for algo in ALGOS {
            let (outcome, base) = engine_baseline(algo, trace);
            for shards in 1..=4 {
                let own = Ownership::round_robin(shards);
                let got = check_sharded(&mut trace.stream(), algo, own, config)
                    .expect("well-formed trace");
                assert_eq!(
                    got.run.outcome,
                    outcome,
                    "{} verdict over {shards} shards",
                    algo.name()
                );
                assert_eq!(
                    got.run.report.events,
                    base.events,
                    "{} events over {shards} shards",
                    algo.name()
                );
                assert_eq!(
                    got.run.report.clock_joins,
                    base.clock_joins,
                    "{} clock_joins over {shards} shards",
                    algo.name()
                );
            }
        }
    }

    #[test]
    fn paper_traces_bit_identical_across_threaded_shard_counts() {
        let config = ShardConfig::default();
        for trace in [rho1(), rho2(), rho3(), rho4()] {
            assert_threaded_matches(&trace, &config);
        }
    }

    #[test]
    fn generated_workloads_bit_identical_with_small_batches() {
        // Tiny batches + depth-1 channels stress every flush boundary
        // and the step-batch recycle path.
        let config = ShardConfig::default().batch_events(64).channel_batches(1);
        for violation_at in [None, Some(0.6)] {
            let cfg = GenConfig {
                threads: 6,
                vars: 48,
                locks: 3,
                events: 4_000,
                violation_at,
                ..GenConfig::default()
            };
            let trace = workloads::generate(&cfg);
            assert_threaded_matches(&trace, &config);
        }
    }

    #[test]
    fn skewed_partition_maximizes_cross_traffic_and_still_matches() {
        // All threads on shard 0, all resources on shard 1: every
        // resource access is a cross-shard dialogue.
        let cfg =
            GenConfig { threads: 4, vars: 24, locks: 2, events: 2_000, ..GenConfig::default() };
        let trace = workloads::generate(&cfg);
        let mut own = Ownership::round_robin(2);
        for i in 0..64 {
            own.pin_thread(i, 0);
            own.pin_lock(i, 1);
            own.pin_var(i, 1);
        }
        for algo in ALGOS {
            let (outcome, base) = engine_baseline(algo, &trace);
            let got = check_sharded(
                &mut trace.stream(),
                algo,
                own.clone(),
                &ShardConfig::default().batch_events(128),
            )
            .expect("well-formed trace");
            assert_eq!(got.run.outcome, outcome, "{} verdict", algo.name());
            assert_eq!(got.run.report.clock_joins, base.clock_joins, "{} joins", algo.name());
            assert!(got.stats.cross_events > 0, "the skew must generate cross traffic");
        }
    }

    #[test]
    fn warm_session_is_bit_identical_and_allocation_free_per_shard() {
        let cfg =
            GenConfig { threads: 5, vars: 32, locks: 2, events: 3_000, ..GenConfig::default() };
        let trace = workloads::generate(&cfg);
        let (outcome, base) = engine_baseline(ShardAlgo::Basic, &trace);
        let mut session =
            ShardSession::new(ShardAlgo::Basic, Ownership::round_robin(3), ShardConfig::default());
        for round in 0..4 {
            let got = session.check(&mut trace.stream()).expect("well-formed trace");
            assert_eq!(got.run.outcome, outcome, "round {round} verdict");
            assert_eq!(got.run.report.clock_joins, base.clock_joins, "round {round} joins");
            if round >= 1 {
                for (i, delta) in session.shard_clock_deltas().iter().enumerate() {
                    assert_eq!(
                        delta.heap_allocs(),
                        0,
                        "round {round}, shard {i}: warm shard must not allocate"
                    );
                }
            }
        }
    }

    #[test]
    fn single_shard_matches_engine_pool_gauges_exactly() {
        let cfg = GenConfig { threads: 4, vars: 16, events: 1_500, ..GenConfig::default() };
        let trace = workloads::generate(&cfg);
        let mut engine = BasicChecker::new();
        let outcome = run_checker(&mut engine, &trace);
        let got = check_sharded(
            &mut trace.stream(),
            ShardAlgo::Basic,
            Ownership::round_robin(1),
            &ShardConfig::default(),
        )
        .expect("well-formed trace");
        assert_eq!(got.run.outcome, outcome);
        let base = engine.report();
        assert_eq!(got.run.report.clock_joins, base.clock_joins);
        assert_eq!(got.run.report.clocks, base.clocks, "1-shard pool gauges match the engine");
    }

    #[test]
    fn ill_formed_input_fails_unless_a_violation_precedes() {
        use tracelog::StdReader;
        // Ill-formed (unmatched begin nesting is fine; a bogus op is not).
        let log = "t1|begin|0\nt1|w(x)|1\nt1|bogus|2\n";
        let err = check_sharded(
            &mut StdReader::new(log.as_bytes()),
            ShardAlgo::Basic,
            Ownership::round_robin(2),
            &ShardConfig::default(),
        );
        assert!(err.is_err(), "parse failure must surface");
        // A violation before the ill-formed tail wins at every count.
        let mut tb = tracelog::TraceBuilder::new();
        let (t1, t2) = (tb.thread("t1"), tb.thread("t2"));
        let x = tb.var("x");
        tb.begin(t1).read(t1, x);
        tb.begin(t2).write(t2, x).end(t2);
        tb.write(t1, x).end(t1);
        let trace = tb.finish();
        assert_threaded_matches(&trace, &ShardConfig::default());
    }
}
