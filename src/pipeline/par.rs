//! The multi-threaded checking runtime: one parse pass, N checkers.
//!
//! A differential run (`rapid compare`, the differential test suites,
//! any "check this trace under every variant" workload) used to re-read
//! and re-parse the trace once per checker — a multi-million-event log
//! paid the parser four times to produce four verdicts. This module
//! fans a **single** ingest pass out to any number of checkers running
//! concurrently:
//!
//! * the calling thread ingests [`EventBatch`]es from the source (and
//!   runs the online well-formedness validator, when enabled) — the
//!   parse pass happens exactly once;
//! * each of up to [`ParConfig::jobs`] worker threads owns its checkers
//!   outright — including each vector-clock checker's shard-local
//!   [`vc::ClockPool`] — so no clock state is ever shared across
//!   threads and the zero-allocation steady state survives intact;
//! * batches flow through bounded [`std::sync::mpsc`] channels
//!   (depth [`ParConfig::channel_batches`]) as [`Arc`]s; the last
//!   worker to finish with a batch recycles its arena back to the
//!   ingest thread. Total buffers are bounded by `channel_batches + 2`
//!   regardless of how slow a worker is — backpressure, not buffering.
//!
//! Every checker sees every event in trace order, so verdicts and
//! [`CheckerReport`] counters are bit-identical to running that checker
//! standalone; only the wall time changes. Workers run under
//! [`std::thread::scope`], so the source may borrow freely and no
//! `'static` bound is needed.
//!
//! Coarse batches are the point (McKenney's batching playbook): the
//! per-event cost of a channel hand-off would dwarf a vector-clock
//! update, while one hand-off per ~4096 events is noise.
//!
//! # Examples
//!
//! ```
//! use aerodrome_suite::pipeline::par::{check_all, standard_checkers, ParConfig};
//! use tracelog::stream::StdReader;
//!
//! let log = "t1|begin|0\nt1|r(x)|1\nt2|w(x)|2\nt1|w(x)|3\nt1|end|4\n";
//! let mut source = StdReader::new(log.as_bytes());
//! let report = check_all(&mut source, standard_checkers(), &ParConfig::default())?;
//!
//! assert_eq!(report.runs.len(), 4); // basic, readopt, optimized, velodrome
//! assert!(report.runs.iter().all(|run| run.outcome.is_violation()));
//! # Ok::<(), tracelog::SourceError>(())
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use aerodrome::basic::BasicChecker;
use aerodrome::optimized::OptimizedChecker;
use aerodrome::readopt::ReadOptChecker;
use aerodrome::{Checker, CheckerReport, Outcome, Violation};
use tracelog::binfmt::{BinTrace, MmapSource};
use tracelog::stream::{EventBatch, EventSource, DEFAULT_BATCH_EVENTS};
use tracelog::{SourceError, Validator, ValiditySummary};
use velodrome::VelodromeChecker;

/// A checker that can be moved onto a worker thread.
pub type SendChecker = Box<dyn Checker + Send>;

/// Tuning knobs of the parallel runtime. The defaults are right for
/// "check one big trace under all variants on a multicore box"; the
/// benches sweep `batch_events` (see docs/PERF.md).
#[derive(Clone, Debug)]
pub struct ParConfig {
    /// Worker threads to spawn; `0` (the default) means one per
    /// available CPU. Capped at the number of checkers — an idle worker
    /// would only cost a channel.
    pub jobs: usize,
    /// Events per [`EventBatch`] refill (default
    /// [`DEFAULT_BATCH_EVENTS`]).
    pub batch_events: usize,
    /// Bounded channel depth, in batches, per worker (default 2). This
    /// bounds how far ingest may run ahead of the slowest worker.
    pub channel_batches: usize,
    /// Run the online well-formedness validator on the ingest thread
    /// (default `true`, matching [`super::Pipeline`]).
    pub validate: bool,
}

impl Default for ParConfig {
    fn default() -> Self {
        Self { jobs: 0, batch_events: DEFAULT_BATCH_EVENTS, channel_batches: 2, validate: true }
    }
}

impl ParConfig {
    /// Sets the worker-thread count (`0` = one per available CPU).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the per-refill batch size.
    ///
    /// # Panics
    ///
    /// Panics if `events == 0`.
    #[must_use]
    pub fn batch_events(mut self, events: usize) -> Self {
        assert!(events > 0, "batch size must be positive");
        self.batch_events = events;
        self
    }

    /// Sets the per-worker channel depth in batches (minimum 1).
    #[must_use]
    pub fn channel_batches(mut self, batches: usize) -> Self {
        self.channel_batches = batches.max(1);
        self
    }

    /// Enables or disables the ingest-side validator.
    #[must_use]
    pub fn validate(mut self, on: bool) -> Self {
        self.validate = on;
        self
    }

    /// The worker count actually used for `checkers` checkers.
    #[must_use]
    pub fn effective_jobs(&self, checkers: usize) -> usize {
        let auto = if self.jobs == 0 {
            thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
        } else {
            self.jobs
        };
        auto.min(checkers).max(1)
    }
}

/// One checker's end-to-end result out of a parallel run.
#[derive(Clone, Debug)]
pub struct CheckerRun {
    /// The checker's [`Checker::name`].
    pub name: &'static str,
    /// Verdict — bit-identical to a standalone run of the same checker
    /// over the same source.
    pub outcome: Outcome,
    /// End-of-run metrics, including the worker's shard-local clock-pool
    /// counters.
    pub report: CheckerReport,
}

impl CheckerRun {
    /// Events this checker processed (its stopping event included).
    #[must_use]
    pub fn events(&self) -> u64 {
        self.report.events
    }
}

/// Runtime counters of a parallel run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Worker threads spawned.
    pub workers: usize,
    /// Batches fanned out to the workers.
    pub batches: u64,
    /// Distinct [`EventBatch`] arenas allocated over the whole run.
    /// Bounded by `channel_batches + 2` no matter how slow a worker is —
    /// the backpressure invariant asserted in the tests.
    pub batch_buffers: usize,
    /// Reader threads that decoded chunks in parallel ([`check_all_chunked`]);
    /// `0` when the calling thread ingested alone ([`check_all`]).
    pub ingest_readers: usize,
}

/// The outcome of [`check_all`].
#[derive(Clone, Debug)]
pub struct ParReport {
    /// Per-checker results, in the order the checkers were supplied.
    pub runs: Vec<CheckerRun>,
    /// Events ingested and fanned out (every worker saw all of them).
    pub events: u64,
    /// Validator residue, as in [`super::PipelineReport::summary`];
    /// `None` when validation was disabled.
    pub summary: Option<ValiditySummary>,
    /// Runtime counters.
    pub stats: ParStats,
}

impl ParReport {
    /// Whether any checker reported a violation.
    #[must_use]
    pub fn any_violation(&self) -> bool {
        self.runs.iter().any(|r| r.outcome.is_violation())
    }
}

/// The full checker panel: all three AeroDrome variants plus Velodrome —
/// what `rapid compare` runs.
#[must_use]
pub fn standard_checkers() -> Vec<SendChecker> {
    vec![
        Box::new(BasicChecker::new()),
        Box::new(ReadOptChecker::new()),
        Box::new(OptimizedChecker::new()),
        Box::new(VelodromeChecker::new()),
    ]
}

/// A worker's share of the panel: each checker is owned outright,
/// stopped individually at its first violation.
struct Slot {
    index: usize,
    checker: SendChecker,
    violation: Option<Violation>,
}

/// Runs every checker over one ingest pass of `source`, in parallel.
///
/// The calling thread parses and validates; workers check. Returns the
/// per-checker runs in input order once the source is drained and every
/// worker has finished.
///
/// # Errors
///
/// Propagates the first [`SourceError`]; an ill-formed event surfaces
/// as [`SourceError::Malformed`] before any checker sees it, and events
/// preceding the failure have been fanned out — as in
/// [`super::Pipeline::run`]. One deliberate difference: the ingest pass
/// always drains the source (checkers stop individually at their first
/// violation, but the run certifies the *whole* log), so an input that
/// is malformed *after* every checker has already stopped still fails
/// here, where a single-checker `Pipeline::run` would have returned its
/// violation without ever reading that far.
///
/// # Panics
///
/// Propagates a panic of a checker on a worker thread.
pub fn check_all<S: EventSource + ?Sized>(
    source: &mut S,
    checkers: Vec<SendChecker>,
    config: &ParConfig,
) -> Result<ParReport, SourceError> {
    if checkers.is_empty() {
        return Ok(ParReport {
            runs: Vec::new(),
            events: 0,
            summary: config.validate.then(|| Validator::new().finish()),
            stats: ParStats::default(),
        });
    }
    let workers = config.effective_jobs(checkers.len());
    let depth = config.channel_batches.max(1);
    // One batch being filled + up to `depth` queued + one in a worker's
    // hands: the whole run never needs more arenas than this, however
    // slow the slowest worker is (fan-out shares one Arc per batch, so
    // the slowest worker's channel is the global bound).
    let buffer_cap = depth + 2;

    // Round-robin the panel over the workers, remembering input order.
    let mut shards: Vec<Vec<Slot>> = (0..workers).map(|_| Vec::new()).collect();
    for (index, checker) in checkers.into_iter().enumerate() {
        shards[index % workers].push(Slot { index, checker, violation: None });
    }

    let mut validator = config.validate.then(Validator::new);
    let mut stats = ParStats { workers, ..ParStats::default() };
    let mut events = 0u64;
    let mut error: Option<SourceError> = None;

    let mut runs: Vec<(usize, CheckerRun)> = Vec::new();
    thread::scope(|s| {
        let (recycle_tx, recycle_rx) = mpsc::channel::<EventBatch>();
        let mut batch_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for shard in shards {
            let (tx, rx) = mpsc::sync_channel::<Arc<EventBatch>>(depth);
            let recycle = recycle_tx.clone();
            batch_txs.push(tx);
            handles.push(s.spawn(move || worker(shard, &rx, &recycle)));
        }
        // Workers hold the only recycle senders: when they are all gone
        // (panic), the blocking recv below errors instead of hanging.
        drop(recycle_tx);

        'ingest: loop {
            let mut batch = match recycle_rx.try_recv() {
                Ok(recycled) => recycled,
                Err(TryRecvError::Empty) if stats.batch_buffers < buffer_cap => {
                    stats.batch_buffers += 1;
                    EventBatch::with_target(config.batch_events)
                }
                Err(TryRecvError::Empty) => {
                    // Pool exhausted: wait for a worker to recycle an
                    // arena. A worker finishing *before* the channels
                    // close can only mean it panicked — and a panicking
                    // worker can strand arenas in its queue instead of
                    // recycling them, so a plain recv() could hang. Poll
                    // with a timeout and abort ingest once any worker is
                    // gone; join below re-raises its panic.
                    let mut recovered = None;
                    loop {
                        match recycle_rx.recv_timeout(Duration::from_millis(50)) {
                            Ok(recycled) => {
                                recovered = Some(recycled);
                                break;
                            }
                            Err(RecvTimeoutError::Timeout) => {
                                if handles.iter().any(thread::ScopedJoinHandle::is_finished) {
                                    break;
                                }
                            }
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                    }
                    match recovered {
                        Some(recycled) => recycled,
                        None => break 'ingest,
                    }
                }
                Err(TryRecvError::Disconnected) => break 'ingest,
            };
            let refill = source.next_batch(&mut batch);
            if let Some(v) = validator.as_mut() {
                if let Some(e) = super::validate_batch(v, &mut batch) {
                    error = Some(e.into());
                }
            }
            let exhausted = match refill {
                // A validation failure inside the batch precedes a source
                // failure past its end; keep the earlier error.
                Err(e) if error.is_none() => {
                    error = Some(e);
                    true
                }
                Err(_) => true,
                Ok(n) => n == 0 || error.is_some(),
            };
            events += batch.len() as u64;
            if !batch.is_empty() {
                stats.batches += 1;
                // Hand the *original* Arc to the last worker so the
                // ingest thread never retains a reference: the last
                // worker to drop is then always a worker, and its
                // `Arc::into_inner` recycles the arena. (If ingest kept
                // a clone, workers could all finish first, every
                // `into_inner` would see a live ingest reference, and
                // the arena would leak — starving the bounded pool.)
                let mut shared = Some(Arc::new(batch));
                let last = batch_txs.len() - 1;
                let mut worker_gone = false;
                for (i, tx) in batch_txs.iter().enumerate() {
                    let arc = if i == last {
                        shared.take().expect("original Arc handed out once")
                    } else {
                        Arc::clone(shared.as_ref().expect("original kept until last"))
                    };
                    worker_gone |= tx.send(arc).is_err();
                }
                if worker_gone {
                    // A send fails only when that worker panicked. Its
                    // results are lost, so the run is doomed: stop
                    // feeding everyone and let join re-raise the panic
                    // (continuing could deadlock on arenas stranded in
                    // the dead worker's queue).
                    break 'ingest;
                }
            }
            if exhausted {
                break;
            }
        }

        drop(batch_txs); // end-of-stream for every worker
        for handle in handles {
            match handle.join() {
                Ok(mut shard_runs) => runs.append(&mut shard_runs),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    if let Some(e) = error {
        return Err(e);
    }
    runs.sort_by_key(|(index, _)| *index); // recover input order
    let runs = runs.into_iter().map(|(_, run)| run).collect();
    Ok(ParReport { runs, events, summary: validator.map(Validator::finish), stats })
}

/// A chunk reader's message to the reordering coordinator: one decoded
/// batch, or the decoded prefix of a batch whose tail failed to decode.
enum ChunkMsg {
    Batch(EventBatch),
    Fail(EventBatch, SourceError),
}

/// [`check_all`] with chunk-parallel ingest of one `.rbt` file: up to
/// `ingest_jobs` reader threads claim chunks off the trace's chunk index
/// and decode them concurrently (sharing one mapping through the `Arc`),
/// while the calling thread stitches their batches back into trace
/// order, validates, and fans out through the same bounded channels and
/// worker loop as [`check_all`] — so verdicts, counters and error
/// semantics are bit-identical to the single-reader path.
///
/// The fixed-width record layout is what makes this sound: a chunk
/// boundary can never split a record, so each reader decodes its chunk
/// with no context from the bytes before it. Reordering is bounded: a
/// reader stalls (cheap sleep-poll) once it runs more than a small
/// window of chunks ahead of the coordinator, so buffered out-of-order
/// batches stay O(readers · chunk size) however ragged the decode pace.
///
/// With `ingest_jobs <= 1` — or a trace too small to split — this is
/// exactly [`check_all`] over a whole-file [`MmapSource`].
///
/// # Errors
///
/// As [`check_all`]: the first error in trace order wins, events decoded
/// before it (and the failing batch's well-formed prefix) are fanned out
/// first, and later chunks — even if already decoded — are discarded.
///
/// # Panics
///
/// Propagates a panic of a checker on a worker thread.
pub fn check_all_chunked(
    trace: &Arc<BinTrace>,
    checkers: Vec<SendChecker>,
    config: &ParConfig,
    ingest_jobs: usize,
) -> Result<ParReport, SourceError> {
    let chunk_count = trace.chunks().len();
    let readers = ingest_jobs.min(chunk_count);
    if readers <= 1 {
        return check_all(&mut MmapSource::new(Arc::clone(trace)), checkers, config);
    }
    if checkers.is_empty() {
        return Ok(ParReport {
            runs: Vec::new(),
            events: 0,
            summary: config.validate.then(|| Validator::new().finish()),
            stats: ParStats::default(),
        });
    }
    let workers = config.effective_jobs(checkers.len());
    let depth = config.channel_batches.max(1);
    // How far (in chunks) a reader may run ahead of the coordinator's
    // consumption point: enough that no reader idles while the window
    // holds undecoded chunks, small enough to bound reordering memory.
    let window = readers * 2 + 2;

    let mut shards: Vec<Vec<Slot>> = (0..workers).map(|_| Vec::new()).collect();
    for (index, checker) in checkers.into_iter().enumerate() {
        shards[index % workers].push(Slot { index, checker, violation: None });
    }
    // Sub-batches each chunk decodes into: the coordinator derives the
    // exact expected (chunk, sub) sequence from the chunk index alone.
    let subs: Vec<usize> =
        trace.chunks().iter().map(|c| (c.events as usize).div_ceil(config.batch_events)).collect();

    let mut validator = config.validate.then(Validator::new);
    let mut stats = ParStats { workers, ingest_readers: readers, ..ParStats::default() };
    let allocated = AtomicUsize::new(0);
    let mut events = 0u64;
    let mut error: Option<SourceError> = None;
    let mut runs: Vec<(usize, CheckerRun)> = Vec::new();

    let claim = AtomicUsize::new(0);
    let consumed = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let (recycle_tx, recycle_rx) = mpsc::channel::<EventBatch>();
    let recycle_rx = Mutex::new(recycle_rx);
    let (data_tx, data_rx) = mpsc::sync_channel::<(usize, usize, ChunkMsg)>(readers * 2);
    thread::scope(|s| {
        let mut batch_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for shard in shards {
            let (tx, rx) = mpsc::sync_channel::<Arc<EventBatch>>(depth);
            let recycle = recycle_tx.clone();
            batch_txs.push(tx);
            handles.push(s.spawn(move || worker(shard, &rx, &recycle)));
        }
        drop(recycle_tx);

        let mut reader_handles = Vec::with_capacity(readers);
        for _ in 0..readers {
            let data_tx = data_tx.clone();
            let (claim, consumed, stop) = (&claim, &consumed, &stop);
            let (recycle_rx, allocated) = (&recycle_rx, &allocated);
            let batch_events = config.batch_events;
            reader_handles.push(s.spawn(move || {
                let mut source: Option<MmapSource> = None;
                while !stop.load(Ordering::Relaxed) {
                    let chunk = claim.fetch_add(1, Ordering::Relaxed);
                    if chunk >= chunk_count {
                        break;
                    }
                    // Stay within the reordering window of the
                    // coordinator; a decode error elsewhere raises
                    // `stop`, so this cannot spin forever.
                    while chunk >= consumed.load(Ordering::Acquire) + window {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        thread::sleep(Duration::from_micros(100));
                    }
                    let src = match &mut source {
                        Some(src) => {
                            src.reset_to_chunk(chunk);
                            src
                        }
                        None => {
                            source.get_or_insert(MmapSource::for_chunk(Arc::clone(trace), chunk))
                        }
                    };
                    let mut sub = 0;
                    loop {
                        let mut batch = recycle_rx
                            .lock()
                            .expect("recycle receiver lock")
                            .try_recv()
                            .unwrap_or_else(|_| {
                                allocated.fetch_add(1, Ordering::Relaxed);
                                EventBatch::with_target(batch_events)
                            });
                        match src.next_batch(&mut batch) {
                            Ok(0) => break,
                            Ok(_) => {
                                if data_tx.send((chunk, sub, ChunkMsg::Batch(batch))).is_err() {
                                    return; // coordinator stopped early
                                }
                                sub += 1;
                            }
                            Err(e) => {
                                // The decoded prefix rides along, exactly
                                // as a single-reader refill would leave it.
                                let _ = data_tx.send((chunk, sub, ChunkMsg::Fail(batch, e)));
                                return;
                            }
                        }
                    }
                }
            }));
        }
        drop(data_tx); // readers hold the only senders

        let mut pending: BTreeMap<(usize, usize), ChunkMsg> = BTreeMap::new();
        let mut next = (0usize, 0usize);
        'consume: while next.0 < chunk_count {
            let msg = match pending.remove(&next) {
                Some(msg) => msg,
                None => match data_rx.recv() {
                    Ok((chunk, sub, msg)) if (chunk, sub) == next => msg,
                    Ok((chunk, sub, msg)) => {
                        pending.insert((chunk, sub), msg);
                        continue;
                    }
                    // All readers gone with chunks outstanding: one of
                    // them panicked; join below re-raises.
                    Err(_) => break 'consume,
                },
            };
            let (mut batch, fail) = match msg {
                ChunkMsg::Batch(batch) => (batch, None),
                ChunkMsg::Fail(batch, e) => (batch, Some(e)),
            };
            if let Some(v) = validator.as_mut() {
                if let Some(e) = super::validate_batch(v, &mut batch) {
                    // An ill-formed event inside the batch precedes a
                    // decode failure past its end; keep the earlier one.
                    error = Some(e.into());
                }
            }
            if error.is_none() {
                error = fail;
            } else {
                drop(fail);
            }
            events += batch.len() as u64;
            if !batch.is_empty() {
                stats.batches += 1;
                // Fan-out mirrors check_all: the original Arc goes to
                // the last worker so a worker is always the one to
                // recycle the arena.
                let mut shared = Some(Arc::new(batch));
                let last = batch_txs.len() - 1;
                let mut worker_gone = false;
                for (i, tx) in batch_txs.iter().enumerate() {
                    let arc = if i == last {
                        shared.take().expect("original Arc handed out once")
                    } else {
                        Arc::clone(shared.as_ref().expect("original kept until last"))
                    };
                    worker_gone |= tx.send(arc).is_err();
                }
                if worker_gone {
                    break 'consume; // a worker panicked; join re-raises
                }
            }
            if error.is_some() {
                break 'consume;
            }
            next.1 += 1;
            if next.1 >= subs[next.0] {
                next = (next.0 + 1, 0);
                consumed.fetch_add(1, Ordering::Release);
            }
        }

        stop.store(true, Ordering::Relaxed);
        drop(data_rx); // unblocks any reader mid-send
        for handle in reader_handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
        drop(batch_txs); // end-of-stream for every worker
        for handle in handles {
            match handle.join() {
                Ok(mut shard_runs) => runs.append(&mut shard_runs),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    if let Some(e) = error {
        return Err(e);
    }
    stats.batch_buffers = allocated.load(Ordering::Relaxed);
    runs.sort_by_key(|(index, _)| *index);
    let runs = runs.into_iter().map(|(_, run)| run).collect();
    Ok(ParReport { runs, events, summary: validator.map(Validator::finish), stats })
}

/// Drains one worker's channel, feeding every batch to the worker's
/// checkers and recycling the arena when this worker is the last holder.
fn worker(
    mut shard: Vec<Slot>,
    rx: &Receiver<Arc<EventBatch>>,
    recycle: &Sender<EventBatch>,
) -> Vec<(usize, CheckerRun)> {
    for batch in rx.iter() {
        for slot in &mut shard {
            if slot.violation.is_some() {
                continue; // stopped: standalone runs stop here too
            }
            for &event in batch.events() {
                if let Err(v) = slot.checker.process(event) {
                    slot.violation = Some(v);
                    break;
                }
            }
        }
        if let Some(arena) = Arc::into_inner(batch) {
            // Last holder: hand the arena back for the next refill. The
            // ingest side may already be gone on early exit; that's fine.
            let _ = recycle.send(arena);
        }
    }
    shard
        .into_iter()
        .map(|slot| {
            let run = CheckerRun {
                name: slot.checker.name(),
                outcome: slot.violation.map_or(Outcome::Serializable, Outcome::Violation),
                report: slot.checker.report(),
            };
            (slot.index, run)
        })
        .collect()
}
